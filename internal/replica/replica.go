// Package replica crosses the process boundary: it turns one writable
// seqserver (the primary) into a horizontally scalable read fleet. The
// replication unit is the primary's own write-ahead log — committed batch
// groups addressed by (epoch, byte offset) and served only up to the fsync
// watermark — so a follower that applies whole groups atomically observes
// exactly the states the primary's queries observed, never a partial flush.
//
// Three actors live here:
//
//   - Source wraps the primary's store and tables for the /replicate
//     endpoints: log state, committed WAL ranges, snapshot ranges for full
//     resyncs, and immutable segment files.
//   - Follower runs on a read replica: it tails the primary's log from a
//     durable cursor (persisted inside the same crash-atomic batch as each
//     applied group), falls back to a snapshot resync when the primary
//     compacted past its cursor, and tracks applied offset, lag and contact
//     freshness.
//   - Router is the query coordinator (cmd/seqrouter): it probes the fleet's
//     readiness, balances read traffic across caught-up followers with the
//     primary as fallback, pins writes to the primary, and fails over when a
//     follower goes stale or dark.
package replica

import (
	"encoding/json"
	"fmt"

	"seqlog/internal/kvstore"
	"seqlog/internal/storage"
)

// Cursor is a follower's durable position in the primary's log. Phase "wal"
// addresses the live log of the given epoch; phase "snap" means a snapshot
// resync is in flight and Off counts applied snapshot-region bytes. The
// cursor commits atomically with the data it acknowledges (see
// storage.ApplyReplicated), so replay from the cursor is idempotent.
type Cursor struct {
	Phase string `json:"phase"` // "wal" | "snap"
	Epoch uint64 `json:"epoch"`
	Off   int64  `json:"off"`
}

// PhaseWAL and PhaseSnap are the two cursor phases.
const (
	PhaseWAL  = "wal"
	PhaseSnap = "snap"
)

// Encode serialises the cursor for ApplyReplicated.
func (c Cursor) Encode() []byte {
	b, _ := json.Marshal(c)
	return b
}

// DecodeCursor parses a persisted cursor.
func DecodeCursor(raw []byte) (Cursor, error) {
	var c Cursor
	if err := json.Unmarshal(raw, &c); err != nil {
		return Cursor{}, fmt.Errorf("replica: bad cursor %q: %v", raw, err)
	}
	if c.Phase != PhaseWAL && c.Phase != PhaseSnap {
		return Cursor{}, fmt.Errorf("replica: bad cursor phase %q", c.Phase)
	}
	return c, nil
}

// State is the primary's replication coordinates plus the name of its
// installed segment file (which a resyncing follower must stage before it can
// apply the reference).
type State struct {
	kvstore.ReplState
	Segment string `json:"segment,omitempty"`
}

// Source serves a primary's (or chained follower's) log to downstream
// replicas. It is a thin, stateless view over the store and tables; the
// HTTP layer in internal/server mounts it under /replicate.
type Source struct {
	Store  *kvstore.DiskStore
	Tables *storage.Tables
}

// State reports the current replication coordinates.
func (s *Source) State() (State, error) {
	st, err := s.Store.ReplState()
	if err != nil {
		return State{}, err
	}
	return State{ReplState: st, Segment: s.Tables.CurrentSegmentName()}, nil
}

// ReadWAL copies committed log bytes from (epoch, off) into p; 0 bytes means
// the follower is caught up. Stale coordinates return
// kvstore.ErrLogTruncated.
func (s *Source) ReadWAL(epoch uint64, off int64, p []byte) (int, error) {
	return s.Store.ReadLogAt(epoch, off, p)
}

// ReadSnapshot copies snapshot-region bytes from off into p; io.EOF marks the
// end of the region.
func (s *Source) ReadSnapshot(epoch uint64, off int64, p []byte) (int, error) {
	return s.Store.ReadSnapshotAt(epoch, off, p)
}

// SegmentSize returns the byte size of a named segment file.
func (s *Source) SegmentSize(name string) (int64, error) {
	return s.Tables.SegmentFileSize(name)
}

// ReadSegment copies bytes of a named segment file, with File.ReadAt
// semantics.
func (s *Source) ReadSegment(name string, off int64, p []byte) (int, error) {
	return s.Tables.ReadSegmentAt(name, off, p)
}
