package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"seqlog/internal/httpclient"
	"seqlog/internal/kvstore"
	"seqlog/internal/metrics"
	"seqlog/internal/storage"
)

// Options tune a follower. The zero value is usable.
type Options struct {
	// Client performs the HTTP fetches; nil uses a default retrying client.
	Client *httpclient.Client
	// PollInterval is the sleep between fetches when the follower is caught
	// up and the primary's long poll returned empty (default 200ms).
	PollInterval time.Duration
	// WaitMS is the long-poll budget forwarded to the primary on caught-up
	// fetches (default 1500).
	WaitMS int
	// ChunkBytes bounds one WAL or snapshot fetch (default 1 MiB).
	ChunkBytes int
	// OnApply, when set, observes every applied record group after its
	// commit — the engine uses it to refresh in-memory state (the interned
	// alphabet) that shipped meta records invalidate.
	OnApply func([]kvstore.Record)
	// Metrics, when set, receives seqlog_replica_lag_bytes,
	// seqlog_replica_applied_groups_total and seqlog_replica_resyncs_total.
	Metrics *metrics.Registry
}

// Stats is a point-in-time snapshot of a follower's replication position,
// exposed through /health and seqquery info.
type Stats struct {
	Primary       string    `json:"primary"`
	State         string    `json:"state"`           // connecting | resync | tailing | stopped
	Phase         string    `json:"phase,omitempty"` // wal | snap
	Epoch         uint64    `json:"epoch"`
	Offset        int64     `json:"offset"`  // applied byte offset within the phase
	Durable       int64     `json:"durable"` // primary's durable watermark, last seen
	LagBytes      int64     `json:"lagBytes"`
	AppliedGroups int64     `json:"appliedGroups"`
	Resyncs       int64     `json:"resyncs"`
	LastContact   time.Time `json:"lastContact,omitempty"`
	LastError     string    `json:"lastError,omitempty"`
}

// Follower tails a primary's log and applies it to the local tables. One
// goroutine owns the loop; Stop cancels it and waits.
type Follower struct {
	primary string
	tb      *storage.Tables
	opt     Options
	client  *httpclient.Client

	mu sync.Mutex
	st Stats

	cancel context.CancelFunc
	done   chan struct{}

	appliedC *metrics.Counter
	resyncC  *metrics.Counter
}

// errStale reports that the primary rejected our coordinates (it compacted
// past them, or restarted into a different epoch): time for a state refetch
// and possibly a full resync.
var errStale = errors.New("replica: coordinates stale on primary")

// Start launches a follower replicating primary into tb. It returns
// immediately; replication state is observable through Stats.
func Start(primary string, tb *storage.Tables, opt Options) *Follower {
	if opt.Client == nil {
		opt.Client = &httpclient.Client{Retries: 3}
	}
	if opt.PollInterval <= 0 {
		opt.PollInterval = 200 * time.Millisecond
	}
	if opt.WaitMS <= 0 {
		opt.WaitMS = 1500
	}
	if opt.ChunkBytes <= 0 {
		opt.ChunkBytes = 1 << 20
	}
	f := &Follower{
		primary: primary,
		tb:      tb,
		opt:     opt,
		client:  opt.Client,
		st:      Stats{Primary: primary, State: "connecting"},
		done:    make(chan struct{}),
	}
	if reg := opt.Metrics; reg != nil {
		reg.GaugeFunc("seqlog_replica_lag_bytes", func() int64 { return f.Stats().LagBytes })
		f.appliedC = reg.Counter("seqlog_replica_applied_groups_total")
		f.resyncC = reg.Counter("seqlog_replica_resyncs_total")
	}
	ctx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel
	go f.run(ctx)
	return f
}

// Stop cancels the replication loop and waits for it to exit.
func (f *Follower) Stop() {
	f.cancel()
	<-f.done
}

// Stats returns the current replication position.
func (f *Follower) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.st
}

func (f *Follower) update(fn func(*Stats)) {
	f.mu.Lock()
	fn(&f.st)
	f.mu.Unlock()
}

// run is the replication loop: sync until an error, back off, retry. Every
// exit path of sync that isn't ctx cancellation is transient by construction
// (network failure, primary restart, compaction race), so the loop never
// gives up — a dark primary just means lag grows until it returns.
func (f *Follower) run(ctx context.Context) {
	defer close(f.done)
	defer f.update(func(s *Stats) { s.State = "stopped" })
	backoff := 100 * time.Millisecond
	for ctx.Err() == nil {
		err := f.sync(ctx)
		if ctx.Err() != nil {
			return
		}
		f.update(func(s *Stats) {
			s.State = "connecting"
			if err != nil {
				s.LastError = err.Error()
			}
		})
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 3*time.Second {
			backoff = 3 * time.Second
		}
	}
}

// sync performs one full replication attempt: fetch the primary's state,
// reconcile the local cursor against it (resync if needed), then tail the
// log until an error or cancellation.
func (f *Follower) sync(ctx context.Context) error {
	st, err := f.fetchState(ctx)
	if err != nil {
		return err
	}
	f.update(func(s *Stats) { s.LastContact = time.Now(); s.Epoch = st.Epoch })

	raw, ok, err := f.tb.ReplicaCursor()
	if err != nil {
		return err
	}
	var cur Cursor
	if ok {
		if cur, err = DecodeCursor(raw); err != nil {
			return err
		}
	}
	switch {
	case !ok && st.SnapshotSize == 0:
		// Fresh follower, primary never compacted: the WAL is the whole
		// history.
		cur = Cursor{Phase: PhaseWAL, Epoch: st.Epoch, Off: st.WALStart}
	case !ok, cur.Epoch != st.Epoch:
		// Fresh follower against a compacted primary, or the primary's
		// epoch moved past our cursor: full resync from the snapshot.
		if cur, err = f.resync(ctx, st, 0, true); err != nil {
			return err
		}
	case cur.Phase == PhaseSnap:
		// A resync was interrupted; the cursor says how far it got.
		if cur, err = f.resync(ctx, st, cur.Off, false); err != nil {
			return err
		}
	}
	return f.tail(ctx, cur)
}

// resync replaces the follower's contents with the primary's snapshot region,
// chunk by chunk, each chunk committing atomically with a snap-phase cursor —
// so an interrupted resync resumes where it stopped instead of starting over.
// When drop is true the local tables are cleared first (atomically with the
// zero cursor). Returns the WAL-phase cursor for the subsequent tail.
func (f *Follower) resync(ctx context.Context, st State, from int64, drop bool) (Cursor, error) {
	f.update(func(s *Stats) { s.State = "resync"; s.Phase = PhaseSnap; s.Offset = from })
	if drop {
		if f.resyncC != nil {
			f.resyncC.Add(1)
		}
		f.update(func(s *Stats) { s.Resyncs++ })
		if err := f.tb.DropAllForResync(Cursor{Phase: PhaseSnap, Epoch: st.Epoch}.Encode()); err != nil {
			return Cursor{}, err
		}
	}
	var pending []byte
	off := from // absolute snapshot offset of pending[0]
	for off+int64(len(pending)) < st.SnapshotSize {
		chunk, err := f.fetchRange(ctx, "/replicate/snapshot", st.Epoch, off+int64(len(pending)))
		if err != nil {
			return Cursor{}, err
		}
		if len(chunk) == 0 {
			return Cursor{}, fmt.Errorf("replica: snapshot stream ended at %d, state says %d", off+int64(len(pending)), st.SnapshotSize)
		}
		f.update(func(s *Stats) { s.LastContact = time.Now() })
		pending = append(pending, chunk...)
		recs, n, err := parseAll(pending)
		if err != nil {
			return Cursor{}, err
		}
		if n == 0 {
			continue
		}
		if err := f.apply(ctx, recs, Cursor{Phase: PhaseSnap, Epoch: st.Epoch, Off: off + int64(n)}); err != nil {
			return Cursor{}, err
		}
		pending = pending[n:]
		off += int64(n)
		f.update(func(s *Stats) { s.Offset = off; s.LagBytes = st.SnapshotSize - off })
	}
	if len(pending) > 0 {
		return Cursor{}, fmt.Errorf("replica: snapshot region ends inside a record (%d trailing bytes)", len(pending))
	}
	// Region done: switch the cursor to the WAL phase durably before tailing.
	cur := Cursor{Phase: PhaseWAL, Epoch: st.Epoch, Off: st.WALStart}
	if err := f.apply(ctx, nil, cur); err != nil {
		return Cursor{}, err
	}
	return cur, nil
}

// tail streams committed WAL bytes from the cursor, applying every complete
// batch group (or bare record) atomically as it arrives. Incomplete group
// tails stay buffered until the commit marker shows up in a later fetch.
func (f *Follower) tail(ctx context.Context, cur Cursor) error {
	f.update(func(s *Stats) { s.State = "tailing"; s.Phase = PhaseWAL; s.Offset = cur.Off })
	var pending []byte
	base := cur.Off // absolute WAL offset of pending[0]
	for ctx.Err() == nil {
		chunk, durable, err := f.fetchWAL(ctx, cur.Epoch, base+int64(len(pending)))
		if err != nil {
			return err
		}
		applied := base
		f.update(func(s *Stats) {
			s.LastContact = time.Now()
			s.Durable = durable
			s.LagBytes = durable - applied
		})
		pending = append(pending, chunk...)
		for {
			recs, n, err := nextGroup(pending)
			if err != nil {
				return err
			}
			if n == 0 {
				break
			}
			base += int64(n)
			if err := f.apply(ctx, recs, Cursor{Phase: PhaseWAL, Epoch: cur.Epoch, Off: base}); err != nil {
				return err
			}
			pending = pending[n:]
			applied = base
			f.update(func(s *Stats) { s.Offset = applied; s.LagBytes = durable - applied })
		}
		if len(chunk) == 0 {
			// Caught up and the long poll expired: breathe before the next
			// poll so a quiet primary isn't hammered.
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(f.opt.PollInterval):
			}
		}
	}
	return ctx.Err()
}

// apply stages any segment files the group references, then applies it with
// its cursor as one crash-atomic batch.
func (f *Follower) apply(ctx context.Context, recs []kvstore.Record, cur Cursor) error {
	for _, r := range recs {
		if r.Op == kvstore.OpPut && r.Table == storage.MetaTable && r.Key == storage.MetaSegmentKey {
			if err := f.fetchSegment(ctx, string(r.Value)); err != nil {
				return err
			}
		}
	}
	if err := f.tb.ApplyReplicated(recs, cur.Encode()); err != nil {
		return err
	}
	if len(recs) > 0 {
		if f.appliedC != nil {
			f.appliedC.Add(1)
		}
		f.update(func(s *Stats) { s.AppliedGroups++ })
		if f.opt.OnApply != nil {
			f.opt.OnApply(recs)
		}
	}
	return nil
}

// parseAll decodes every complete record in buf (snapshot streams carry no
// batch markers), copying values out of the shared buffer. n is the bytes
// consumed; a trailing partial record is left for the next chunk.
func parseAll(buf []byte) (recs []kvstore.Record, n int, err error) {
	for n < len(buf) {
		rec, next, perr := kvstore.ParseRecord(buf, n)
		if errors.Is(perr, kvstore.ErrShortRecord) {
			break
		}
		if perr != nil {
			return nil, 0, perr
		}
		rec.Value = append([]byte(nil), rec.Value...)
		recs = append(recs, rec)
		n = next
	}
	return recs, n, nil
}

// nextGroup extracts the next complete apply unit from buf: a bare record, or
// a whole begin..commit batch group with the markers stripped. n = 0 means
// the unit is still incomplete. Values are copied out of the shared buffer.
func nextGroup(buf []byte) (recs []kvstore.Record, n int, err error) {
	off := 0
	inBatch := false
	for off < len(buf) {
		rec, next, perr := kvstore.ParseRecord(buf, off)
		if errors.Is(perr, kvstore.ErrShortRecord) {
			return nil, 0, nil
		}
		if perr != nil {
			return nil, 0, perr
		}
		switch rec.Op {
		case kvstore.OpBatchBegin:
			if inBatch {
				return nil, 0, fmt.Errorf("replica: nested batch group at offset %d", off)
			}
			inBatch, recs = true, recs[:0]
		case kvstore.OpBatchCommit:
			if !inBatch {
				return nil, 0, fmt.Errorf("replica: commit marker outside a group at offset %d", off)
			}
			return recs, next, nil
		default:
			rec.Value = append([]byte(nil), rec.Value...)
			recs = append(recs, rec)
			if !inBatch {
				return recs, next, nil
			}
		}
		off = next
	}
	return nil, 0, nil
}

// --- HTTP fetches ---

func (f *Follower) fetchState(ctx context.Context) (State, error) {
	resp, err := f.client.GetCtx(ctx, f.primary+"/replicate/state")
	if err != nil {
		return State{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return State{}, fmt.Errorf("replica: state fetch: status %d", resp.StatusCode)
	}
	var st State
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return State{}, fmt.Errorf("replica: bad state body: %v", err)
	}
	return st, nil
}

// fetchWAL reads one committed range, long-polling when caught up. The
// primary's durable watermark rides back on a header so lag is observable
// even when no bytes flow.
func (f *Follower) fetchWAL(ctx context.Context, epoch uint64, from int64) ([]byte, int64, error) {
	body, hdr, err := f.get(ctx, "/replicate/wal", url.Values{
		"epoch":   {strconv.FormatUint(epoch, 10)},
		"from":    {strconv.FormatInt(from, 10)},
		"max":     {strconv.Itoa(f.opt.ChunkBytes)},
		"wait_ms": {strconv.Itoa(f.opt.WaitMS)},
	})
	if err != nil {
		return nil, 0, err
	}
	durable, _ := strconv.ParseInt(hdr.Get("X-Seqlog-Durable"), 10, 64)
	return body, durable, nil
}

func (f *Follower) fetchRange(ctx context.Context, path string, epoch uint64, from int64) ([]byte, error) {
	body, _, err := f.get(ctx, path, url.Values{
		"epoch": {strconv.FormatUint(epoch, 10)},
		"from":  {strconv.FormatInt(from, 10)},
		"max":   {strconv.Itoa(f.opt.ChunkBytes)},
	})
	return body, err
}

func (f *Follower) get(ctx context.Context, path string, q url.Values) ([]byte, http.Header, error) {
	resp, err := f.client.GetCtx(ctx, f.primary+path+"?"+q.Encode())
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict:
		io.Copy(io.Discard, resp.Body)
		return nil, nil, errStale
	default:
		return nil, nil, fmt.Errorf("replica: GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	return body, resp.Header, nil
}

// fetchSegment stages one immutable segment file via the resumable streaming
// GET, so a connection drop mid-transfer resumes instead of restarting a
// multi-megabyte download. Already-staged segments are skipped (files are
// immutable and content-addressed by name).
func (f *Follower) fetchSegment(ctx context.Context, name string) error {
	if f.tb.HasSegment(name) {
		return nil
	}
	rc, err := f.client.GetStream(ctx, f.primary+"/replicate/segment?name="+url.QueryEscape(name), "from", 0)
	if err != nil {
		return err
	}
	defer rc.Close()
	return f.tb.StageSegment(name, rc)
}
