package replica_test

// End-to-end replication tests: a real primary engine behind a real HTTP
// handler, a real follower engine pulling /replicate over the wire. The
// differential oracle asserts the property replication exists for — a
// caught-up follower is indistinguishable from its primary across every
// query family, byte for byte.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"seqlog"
	"seqlog/internal/httpclient"
	"seqlog/internal/replica"
	"seqlog/internal/server"
)

// fastClient retries aggressively with no real sleeping, so tests converge
// quickly.
func fastClient() *httpclient.Client {
	return &httpclient.Client{Retries: 8, Sleep: func(time.Duration) {}}
}

func fastOptions() replica.Options {
	return replica.Options{Client: fastClient(), PollInterval: 5 * time.Millisecond, WaitMS: 50}
}

// openPrimary opens a durable primary engine and serves it over HTTP.
func openPrimary(t *testing.T, cfg seqlog.Config) (*seqlog.Engine, *httptest.Server) {
	t.Helper()
	cfg.Dir = t.TempDir()
	eng, err := seqlog.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	srv := httptest.NewServer(server.New(eng))
	t.Cleanup(srv.Close)
	return eng, srv
}

// openFollower opens a read-only engine and starts it replicating primary.
func openFollower(t *testing.T, primary string, cfg seqlog.Config) *seqlog.Engine {
	t.Helper()
	cfg.Dir = t.TempDir()
	cfg.ReadOnly = true
	eng, err := seqlog.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	if err := eng.StartFollower(primary, fastOptions()); err != nil {
		t.Fatal(err)
	}
	return eng
}

// ingestBatches writes n small batches with overlapping activities so every
// query family has work to do.
func ingestBatches(t *testing.T, eng *seqlog.Engine, base, n int) {
	t.Helper()
	acts := []string{"login", "browse", "add-to-cart", "checkout", "pay"}
	for b := 0; b < n; b++ {
		var events []seqlog.Event
		for tr := 0; tr < 6; tr++ {
			trace := int64(base + b*6 + tr)
			for i, a := range acts {
				events = append(events, seqlog.Event{Trace: trace, Activity: a, Time: int64(1000*b + 10*i + tr)})
			}
		}
		if _, err := eng.Ingest(events); err != nil {
			t.Fatal(err)
		}
	}
}

// waitCaughtUp blocks until the follower has applied everything the primary
// has made durable (same epoch, same offset, tailing state). Replication only
// ships fsynced bytes, so the primary is synced first — otherwise a trailing
// un-synced write (e.g. a prune) would never arrive.
func waitCaughtUp(t *testing.T, primary, follower *seqlog.Engine) {
	t.Helper()
	if err := primary.Sync(); err != nil {
		t.Fatal(err)
	}
	src, ok := primary.ReplicaSource()
	if !ok {
		t.Fatal("primary cannot serve replication")
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		pst, err := src.State()
		if err != nil {
			t.Fatal(err)
		}
		fst := follower.Replication()
		if fst == nil {
			t.Fatal("follower has no replication stats")
		}
		if fst.State == "tailing" && fst.Epoch == pst.Epoch && fst.Offset == pst.WALDurable {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("follower never caught up: primary=%+v follower=%+v",
		mustState(t, src), *follower.Replication())
}

func mustState(t *testing.T, src *replica.Source) replica.State {
	t.Helper()
	st, err := src.State()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// oracle asserts byte-identical answers from both engines across the query
// families: the planner-backed Detect, the default Detect, DetectWithin and
// Stats (plus DetectTraces and Info partitions for good measure).
func oracle(t *testing.T, primary, follower *seqlog.Engine, pattern []string) {
	t.Helper()
	check := func(name string, q func(*seqlog.Engine) (any, error)) {
		t.Helper()
		pv, perr := q(primary)
		fv, ferr := q(follower)
		if (perr == nil) != (ferr == nil) {
			t.Fatalf("%s: error mismatch: primary=%v follower=%v", name, perr, ferr)
		}
		if perr != nil {
			return
		}
		pj, _ := json.Marshal(pv)
		fj, _ := json.Marshal(fv)
		if !bytes.Equal(pj, fj) {
			t.Fatalf("%s diverged:\nprimary:  %s\nfollower: %s", name, pj, fj)
		}
	}
	check("Detect", func(e *seqlog.Engine) (any, error) { return e.Detect(pattern) })
	check("DetectTraces", func(e *seqlog.Engine) (any, error) { return e.DetectTraces(pattern) })
	check("DetectWithin", func(e *seqlog.Engine) (any, error) { return e.DetectWithin(pattern, 100) })
	check("Stats", func(e *seqlog.Engine) (any, error) { return e.Stats(pattern) })
	check("NumTraces", func(e *seqlog.Engine) (any, error) { return e.NumTraces() })
	check("Activities", func(e *seqlog.Engine) (any, error) { return e.Activities(), nil })
}

func TestFollowerCatchupOracle(t *testing.T) {
	primary, srv := openPrimary(t, seqlog.Config{})
	// The follower runs with the join planner on: results must still be
	// byte-identical to the primary's planner-off path (the planner is an
	// execution strategy, not a semantics change), which makes the oracle a
	// cross-check of both replication and the planner.
	follower := openFollower(t, srv.URL, seqlog.Config{Planner: true})

	ingestBatches(t, primary, 0, 5)
	waitCaughtUp(t, primary, follower)
	oracle(t, primary, follower, []string{"login", "checkout", "pay"})

	// More batches after the catch-up: the tail keeps flowing.
	ingestBatches(t, primary, 1000, 3)
	if err := primary.PruneTraces([]int64{2, 3}); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, primary, follower)
	oracle(t, primary, follower, []string{"login", "checkout", "pay"})
	oracle(t, primary, follower, []string{"browse", "pay"})

	if fst := follower.Replication(); fst.LagBytes != 0 || fst.AppliedGroups == 0 {
		t.Fatalf("stats look wrong after catch-up: %+v", *fst)
	}
	if role := follower.Role(); role != "follower" {
		t.Fatalf("follower role = %q", role)
	}
}

func TestFollowerRejectsLocalWrites(t *testing.T) {
	primary, srv := openPrimary(t, seqlog.Config{})
	follower := openFollower(t, srv.URL, seqlog.Config{})
	ingestBatches(t, primary, 0, 1)
	waitCaughtUp(t, primary, follower)

	if _, err := follower.Ingest([]seqlog.Event{{Trace: 1, Activity: "x", Time: 1}}); err != seqlog.ErrReadOnly {
		t.Fatalf("Ingest on follower: %v, want ErrReadOnly", err)
	}
	if err := follower.PruneTraces([]int64{1}); err != seqlog.ErrReadOnly {
		t.Fatalf("PruneTraces on follower: %v, want ErrReadOnly", err)
	}
	if err := follower.RotatePeriod("p2"); err != seqlog.ErrReadOnly {
		t.Fatalf("RotatePeriod on follower: %v, want ErrReadOnly", err)
	}

	// Over HTTP the same rejection is a 403.
	fsrv := httptest.NewServer(server.New(follower))
	defer fsrv.Close()
	resp, err := http.Post(fsrv.URL+"/ingest", "application/json",
		bytes.NewReader([]byte(`{"events":[{"Trace":9,"Activity":"x","Time":1}]}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("POST /ingest on follower: status %d, want 403", resp.StatusCode)
	}
}

func TestFollowerSegmentShippingAndResync(t *testing.T) {
	primary, srv := openPrimary(t, seqlog.Config{Segments: true})
	ingestBatches(t, primary, 0, 4)
	// Freeze the postings into a segment file and compact: the WAL epoch
	// advances, so a fresh follower must take the snapshot+segment path.
	if err := primary.Compact(); err != nil {
		t.Fatal(err)
	}
	ingestBatches(t, primary, 500, 2)

	follower := openFollower(t, srv.URL, seqlog.Config{Segments: true})
	waitCaughtUp(t, primary, follower)
	oracle(t, primary, follower, []string{"login", "checkout", "pay"})
	if fseg := follower.SegmentStats(); fseg.Segments != primary.SegmentStats().Segments {
		t.Fatalf("segment tier not replicated: follower=%+v primary=%+v",
			fseg, primary.SegmentStats())
	}
	if fst := follower.Replication(); fst.Resyncs != 1 {
		t.Fatalf("expected exactly one resync, got %+v", *fst)
	}

	// A second freeze+compact while the follower is live: it must follow
	// the segment switch and the epoch bump without manual help.
	ingestBatches(t, primary, 800, 2)
	if err := primary.Compact(); err != nil {
		t.Fatal(err)
	}
	ingestBatches(t, primary, 900, 1)
	waitCaughtUp(t, primary, follower)
	oracle(t, primary, follower, []string{"login", "checkout", "pay"})
}

// flakyProxy forwards to base but kills every response after a few KB, and
// periodically refuses outright — the network a follower actually lives on.
type flakyProxy struct {
	base  string
	calls atomic.Int64
}

func (p *flakyProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := p.calls.Add(1)
	if n%7 == 0 {
		panic(http.ErrAbortHandler) // connection reset before headers
	}
	resp, err := http.Get(p.base + r.URL.RequestURI())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	body, _ := io.ReadAll(resp.Body)
	if n%3 == 0 && len(body) > 512 {
		// Deliver a prefix, then cut the connection mid-body.
		w.Write(body[:512])
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}
	w.Write(body)
}

func TestFollowerSurvivesChaosNoGoroutineLeak(t *testing.T) {
	primary, srv := openPrimary(t, seqlog.Config{})
	proxy := httptest.NewServer(&flakyProxy{base: srv.URL})
	defer proxy.Close()

	baseline := runtime.NumGoroutine()

	cfg := seqlog.Config{Dir: t.TempDir(), ReadOnly: true}
	follower, err := seqlog.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := follower.StartFollower(proxy.URL, fastOptions()); err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 3; round++ {
		ingestBatches(t, primary, round*100, 2)
	}
	waitCaughtUp(t, primary, follower)
	oracle(t, primary, follower, []string{"login", "checkout", "pay"})

	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	// Idle keep-alive connections (the follower's and the proxy's outbound
	// requests both ride http.DefaultClient) each hold transport goroutines;
	// drop them so the count converges to the pre-follower baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		http.DefaultClient.CloseIdleConnections()
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline {
		t.Errorf("goroutines leaked after follower shutdown: %d running, baseline %d", g, baseline)
	}
}

func TestFollowerReadinessSplit(t *testing.T) {
	primary, srv := openPrimary(t, seqlog.Config{})
	follower := openFollower(t, srv.URL, seqlog.Config{})
	ingestBatches(t, primary, 0, 2)
	waitCaughtUp(t, primary, follower)

	fsrv := httptest.NewServer(server.NewWith(follower, server.Options{ReadyMaxLagBytes: 1 << 20}))
	defer fsrv.Close()

	for _, path := range []string{"/health/live", "/health/ready"} {
		resp, err := http.Get(fsrv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s on caught-up follower: %d", path, resp.StatusCode)
		}
	}

	// A follower that cannot reach its primary is still alive, and once the
	// staleness bound trips it must stop reporting ready.
	srv.Close()
	stale := httptest.NewServer(server.NewWith(follower, server.Options{ReadyMaxStale: time.Nanosecond}))
	defer stale.Close()
	time.Sleep(5 * time.Millisecond)
	resp, err := http.Get(stale.URL + "/health/ready")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET /health/ready with unreachable primary: %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(stale.URL + "/health/live")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /health/live must stay 200 while lagging, got %d", resp.StatusCode)
	}
}

func TestFollowerResumesAcrossRestart(t *testing.T) {
	primary, srv := openPrimary(t, seqlog.Config{})
	ingestBatches(t, primary, 0, 3)

	dir := t.TempDir()
	open := func() *seqlog.Engine {
		eng, err := seqlog.Open(seqlog.Config{Dir: dir, ReadOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.StartFollower(srv.URL, fastOptions()); err != nil {
			t.Fatal(err)
		}
		return eng
	}
	f1 := open()
	waitCaughtUp(t, primary, f1)
	if err := f1.Close(); err != nil {
		t.Fatal(err)
	}

	// New writes land while the follower is down; after reopen it resumes
	// from its durable cursor (no resync — the epoch never changed).
	ingestBatches(t, primary, 300, 2)
	f2 := open()
	defer f2.Close()
	waitCaughtUp(t, primary, f2)
	oracle(t, primary, f2, []string{"login", "checkout", "pay"})
	if st := f2.Replication(); st.Resyncs != 0 {
		t.Fatalf("restart must not resync when the epoch is unchanged: %+v", *st)
	}
}

// --- router tests ---

// fakeBackend is a minimal seqserver stand-in with controllable readiness.
type fakeBackend struct {
	name  string
	ready atomic.Bool
	lag   atomic.Int64
	dead  atomic.Bool // refuse everything (simulates a dark host)
	hits  atomic.Int64
}

func (b *fakeBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if b.dead.Load() {
		panic(http.ErrAbortHandler)
	}
	switch r.URL.Path {
	case "/health/ready":
		body := map[string]any{"status": "ok", "replication": map[string]any{"lagBytes": b.lag.Load()}}
		code := http.StatusOK
		if !b.ready.Load() {
			code = http.StatusServiceUnavailable
			body["status"] = "lagging"
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(body)
	default:
		b.hits.Add(1)
		fmt.Fprintf(w, `{"served-by":%q}`, b.name)
	}
}

func startRouter(t *testing.T, primary *httptest.Server, replicas ...*httptest.Server) (*replica.Router, *httptest.Server) {
	t.Helper()
	urls := make([]string, len(replicas))
	for i, r := range replicas {
		urls[i] = r.URL
	}
	router, err := replica.NewRouter(replica.RouterOptions{
		Primary:       primary.URL,
		Replicas:      urls,
		ProbeInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(router.Close)
	srv := httptest.NewServer(router)
	t.Cleanup(srv.Close)
	return router, srv
}

func TestRouterBalancesReadsAndPinsWrites(t *testing.T) {
	p := &fakeBackend{name: "primary"}
	r1 := &fakeBackend{name: "r1"}
	r2 := &fakeBackend{name: "r2"}
	for _, b := range []*fakeBackend{p, r1, r2} {
		b.ready.Store(true)
	}
	ps, rs1, rs2 := httptest.NewServer(p), httptest.NewServer(r1), httptest.NewServer(r2)
	defer ps.Close()
	defer rs1.Close()
	defer rs2.Close()
	_, router := startRouter(t, ps, rs1, rs2)

	for i := 0; i < 10; i++ {
		resp, err := http.Post(router.URL+"/detect", "application/json", bytes.NewReader([]byte(`{}`)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if r1.hits.Load() == 0 || r2.hits.Load() == 0 {
		t.Fatalf("reads not balanced: r1=%d r2=%d", r1.hits.Load(), r2.hits.Load())
	}
	if p.hits.Load() != 0 {
		t.Fatalf("reads reached the primary while replicas were ready: %d", p.hits.Load())
	}

	for i := 0; i < 4; i++ {
		resp, err := http.Post(router.URL+"/ingest", "application/json", bytes.NewReader([]byte(`{"events":[]}`)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if p.hits.Load() != 4 {
		t.Fatalf("writes must pin to the primary: primary saw %d of 4", p.hits.Load())
	}
}

func TestRouterFailsOverAndDrainsLagging(t *testing.T) {
	p := &fakeBackend{name: "primary"}
	r1 := &fakeBackend{name: "r1"}
	p.ready.Store(true)
	r1.ready.Store(true)
	ps, rs1 := httptest.NewServer(p), httptest.NewServer(r1)
	defer ps.Close()
	defer rs1.Close()
	router, rsrv := startRouter(t, ps, rs1)

	get := func() string {
		resp, err := http.Get(rsrv.URL + "/activities")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.Header.Get("X-Seqrouter-Backend")
	}
	if got := get(); got != rs1.URL {
		t.Fatalf("read went to %s, want the replica %s", got, rs1.URL)
	}

	// The replica goes dark mid-flight: the same request must fail over to
	// the primary within the request, not after the next probe tick.
	r1.dead.Store(true)
	if got := get(); got != ps.URL {
		t.Fatalf("read after replica death went to %q, want primary %s", got, ps.URL)
	}

	// It comes back but reports itself not ready: probes must drain it.
	r1.dead.Store(false)
	r1.ready.Store(false)
	time.Sleep(50 * time.Millisecond)
	if got := get(); got != ps.URL {
		t.Fatalf("read to drained replica: went to %q, want primary", got)
	}

	// Ready again: traffic returns.
	r1.ready.Store(true)
	deadline := time.Now().Add(2 * time.Second)
	for get() != rs1.URL {
		if time.Now().After(deadline) {
			t.Fatal("replica never rejoined the read rotation")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Status endpoint reflects the fleet.
	var status struct {
		Backends []replica.BackendStatus `json:"backends"`
	}
	resp, err := http.Get(rsrv.URL + "/router/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if len(status.Backends) != 2 || status.Backends[0].Role != "primary" {
		t.Fatalf("unexpected status: %+v", status)
	}
	_ = router
}
