// Package netshard is the network implementation of the storage.Backend
// seam: a shard server (cmd/seqshard) exposes one store's five-table
// read/commit surface over length-prefixed TCP, and
// Client implements storage.Backend against it, so the engine, the ingest
// pipeline and the query layer run unchanged over remote shards. The
// coordinator side wraps N clients in shard.NewFromBackends — routing,
// deterministic merges and the per-shard ShardedCommits group commits are
// exactly the in-process ones, which is what makes a multi-process engine
// byte-identical to a single-process sharded engine (the differential
// oracle asserts this).
//
// Wire format (DESIGN.md §13): after an 8-byte hello exchange, each
// direction carries frames of [uint32 big-endian length][payload]. A request
// payload is [opcode][body]; a response payload is [status][body] where
// status 0 is the final success frame, 2 is a partial frame of a streaming
// response (more follow), and 1 is an error frame carrying [code][message].
// Row bodies reuse the storage package's on-disk row codecs verbatim
// (storage.EncodeSeqRow and friends), so a remote row can never drift from
// a local one. Frame lengths are capped (DefaultMaxFrame) and every decoder
// bounds its allocations by the received length: a crafted length fails
// with a typed error instead of panicking or OOMing the receiver.
//
// Failure semantics: one WAL group per remote store — a commit group ships
// as opCommitChunk*+opCommit and is applied inside the server store's own
// BeginBatch/CommitBatch, acked only after the group's fsync. There is no
// cross-shard transaction (no 2PC): a coordinator crash between shard
// commits can leave shards a flush apart, which the watermark-idempotent
// replay of Algorithm 1 tolerates, exactly as for local sharded stores.
package netshard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"seqlog/internal/kvstore"
	"seqlog/internal/storage"
)

// Protocol constants. The magic and version are exchanged in an 8-byte
// hello from each side before any frame: client sends
// [magic(4)][version][0 0 0], server answers [magic(4)][version][flags][0 0].
const (
	protoVersion = 1

	// flagWAL in the server hello advertises that the store keeps a WAL
	// (implements kvstore.BatchWriter): the client then exposes a Batch()
	// group writer; without it Batch() returns nil and callers fall back to
	// plain writes, mirroring the local MemStore contract.
	flagWAL byte = 1 << 0
)

var protoMagic = [4]byte{'S', 'Q', 'S', 'H'}

// DefaultMaxFrame caps one frame's payload, bounding what either side will
// allocate for a single read. Streaming responses and chunked commit groups
// keep well under it.
const DefaultMaxFrame = 32 << 20

// DefaultMaxCommit caps one commit group accumulated server-side across
// opCommitChunk frames — the backstop against a client streaming chunks
// forever.
const DefaultMaxCommit = 512 << 20

// chunkTarget is the client-side split size for shipped commit groups and
// the server-side flush size for streaming scans.
const chunkTarget = 4 << 20

// Typed protocol errors. ErrFrameTooLarge and ErrBadFrame travel across the
// wire by code, so both peers see the typed value regardless of which side
// rejected the frame.
var (
	// ErrBadMagic means the peer did not speak this protocol at all.
	ErrBadMagic = errors.New("netshard: bad protocol magic")
	// ErrVersion means the peer speaks an incompatible protocol version.
	ErrVersion = errors.New("netshard: protocol version mismatch")
	// ErrBadFrame means a frame or its body was malformed (zero length,
	// truncated varint, trailing bytes).
	ErrBadFrame = errors.New("netshard: malformed frame")
	// ErrFrameTooLarge means a frame header announced a payload over the
	// size limit; the payload is never allocated or read.
	ErrFrameTooLarge = errors.New("netshard: frame exceeds size limit")
	// ErrCommitTooLarge means a chunked commit group overran the server's
	// accumulation cap.
	ErrCommitTooLarge = errors.New("netshard: commit group exceeds size limit")
	// ErrClosed is returned by operations on a closed client.
	ErrClosed = errors.New("netshard: client is closed")
)

// Request opcodes. The numbering is part of the wire format: append only.
const (
	opPing byte = iota + 1
	opStatus
	opGetMeta
	opPutMeta
	opGetSeq
	opAppendSeq
	opDeleteSeq
	opScanSeq
	opNumTraces
	opGetIndex
	opGetIndexAll
	opGetIndexSorted
	opGetIndexAllSorted
	opAppendIndex
	opScanIndex
	opNumIndexedPairs
	opDropPeriod
	opPeriods
	opGetPostings
	opFreeze
	opGetCounts
	opGetRCounts
	opMergeCounts
	opMergeRCounts
	opGetPairCount
	opGetLastChecked
	opMergeLastChecked
	opPruneLastChecked
	opSetCacheBudget
	opSync
	opCommitChunk
	opCommit
	opMax // one past the last opcode
)

// opNames label the per-op RPC metrics and OpError messages.
var opNames = [opMax]string{
	opPing: "ping", opStatus: "status",
	opGetMeta: "get_meta", opPutMeta: "put_meta",
	opGetSeq: "get_seq", opAppendSeq: "append_seq", opDeleteSeq: "delete_seq",
	opScanSeq: "scan_seq", opNumTraces: "num_traces",
	opGetIndex: "get_index", opGetIndexAll: "get_index_all",
	opGetIndexSorted: "get_index_sorted", opGetIndexAllSorted: "get_index_all_sorted",
	opAppendIndex: "append_index", opScanIndex: "scan_index",
	opNumIndexedPairs: "num_indexed_pairs", opDropPeriod: "drop_period",
	opPeriods: "periods", opGetPostings: "get_postings", opFreeze: "freeze",
	opGetCounts: "get_counts", opGetRCounts: "get_rcounts",
	opMergeCounts: "merge_counts", opMergeRCounts: "merge_rcounts",
	opGetPairCount: "get_pair_count", opGetLastChecked: "get_last_checked",
	opMergeLastChecked: "merge_last_checked", opPruneLastChecked: "prune_last_checked",
	opSetCacheBudget: "set_cache_budget", opSync: "sync",
	opCommitChunk: "commit_chunk", opCommit: "commit",
}

func opName(op byte) string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op_%d", op)
}

// Response status bytes.
const (
	stOK   byte = 0 // final frame of a successful response
	stErr  byte = 1 // error frame: body is [code][message]
	stMore byte = 2 // partial frame of a streaming response
)

// Wire error codes: the handful of sentinel errors whose identity must
// survive the network so errors.Is keeps working on the client. Everything
// else travels as code 0 with its message verbatim.
const (
	ecGeneric byte = iota
	ecSegmentsDisabled
	ecCorrupt
	ecClosed
	ecFrameTooLarge
	ecBadFrame
	ecCommitTooLarge
)

func errToCode(err error) byte {
	switch {
	case errors.Is(err, storage.ErrSegmentsDisabled):
		return ecSegmentsDisabled
	case errors.Is(err, storage.ErrCorrupt):
		return ecCorrupt
	case errors.Is(err, kvstore.ErrClosed):
		return ecClosed
	case errors.Is(err, ErrFrameTooLarge):
		return ecFrameTooLarge
	case errors.Is(err, ErrBadFrame):
		return ecBadFrame
	case errors.Is(err, ErrCommitTooLarge):
		return ecCommitTooLarge
	}
	return ecGeneric
}

func codeSentinel(code byte) error {
	switch code {
	case ecSegmentsDisabled:
		return storage.ErrSegmentsDisabled
	case ecCorrupt:
		return storage.ErrCorrupt
	case ecClosed:
		return kvstore.ErrClosed
	case ecFrameTooLarge:
		return ErrFrameTooLarge
	case ecBadFrame:
		return ErrBadFrame
	case ecCommitTooLarge:
		return ErrCommitTooLarge
	}
	return nil
}

// remoteError is a server-reported failure. Error() is the server's message
// verbatim — the differential oracle compares error strings byte-for-byte
// between local and remote engines, so no transport prefix is added; use
// errors.Is with the sentinels above (or errors.As with *OpError for
// transport failures) to classify programmatically.
type remoteError struct {
	code byte
	msg  string
}

func (e *remoteError) Error() string { return e.msg }

func (e *remoteError) Is(target error) bool {
	s := codeSentinel(e.code)
	return s != nil && target == s
}

// OpError is a transport-level RPC failure: the connection died, the peer
// sent garbage, or the dial failed. Remote application errors are NOT
// wrapped in OpError — they come back as the server's error verbatim.
type OpError struct {
	// Addr is the shard server address the RPC targeted.
	Addr string
	// Op is the RPC name (the metrics label, e.g. "get_postings").
	Op string
	// Err is the underlying failure.
	Err error
}

func (e *OpError) Error() string {
	return fmt.Sprintf("netshard: %s %s: %v", e.Op, e.Addr, e.Err)
}

func (e *OpError) Unwrap() error { return e.Err }

// ---- Frame I/O --------------------------------------------------------------

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) == 0 {
		return ErrBadFrame
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame into buf (grown as needed) and returns the
// payload. A zero length fails ErrBadFrame; a length over max fails
// ErrFrameTooLarge without allocating or consuming the payload — the caller
// must treat the connection as poisoned in both cases, since the stream
// position is no longer trustworthy.
func readFrame(r io.Reader, buf []byte, max uint32) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, ErrBadFrame
	}
	if n > max {
		return nil, fmt.Errorf("%w (%d > %d)", ErrFrameTooLarge, n, max)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// ---- Hello exchange ---------------------------------------------------------

func writeHello(w io.Writer, flags byte) error {
	var h [8]byte
	copy(h[:4], protoMagic[:])
	h[4] = protoVersion
	h[5] = flags
	_, err := w.Write(h[:])
	return err
}

func readHello(r io.Reader) (flags byte, err error) {
	var h [8]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return 0, err
	}
	if [4]byte(h[:4]) != protoMagic {
		return 0, ErrBadMagic
	}
	if h[4] != protoVersion {
		return 0, fmt.Errorf("%w (peer %d, ours %d)", ErrVersion, h[4], protoVersion)
	}
	return h[5], nil
}

// ---- Body codec helpers -----------------------------------------------------

// wbuf builds a frame body: varints plus length-prefixed blobs.
type wbuf struct{ b []byte }

func (w *wbuf) u64(v uint64)   { w.b = binary.AppendUvarint(w.b, v) }
func (w *wbuf) i64(v int64)    { w.b = binary.AppendVarint(w.b, v) }
func (w *wbuf) byte1(v byte)   { w.b = append(w.b, v) }
func (w *wbuf) blob(p []byte)  { w.u64(uint64(len(p))); w.b = append(w.b, p...) }
func (w *wbuf) str(s string)   { w.u64(uint64(len(s))); w.b = append(w.b, s...) }
func (w *wbuf) bool1(v bool) {
	if v {
		w.u64(1)
	} else {
		w.u64(0)
	}
}

// rbuf consumes a frame body. The first malformation latches err and turns
// every later read into a zero-value no-op; callers check err (or use
// done()) once at the end. Blob and string lengths are validated against
// the remaining input before any allocation, so a crafted body cannot
// request more memory than the (already frame-capped) payload it arrived in.
type rbuf struct {
	b   []byte
	err error
}

func (r *rbuf) fail() {
	if r.err == nil {
		r.err = ErrBadFrame
	}
}

func (r *rbuf) u64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *rbuf) i64() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *rbuf) byte1() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) == 0 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *rbuf) bool1() bool { return r.u64() != 0 }

// blob returns the next length-prefixed byte slice, aliasing the input.
func (r *rbuf) blob() []byte {
	n := r.u64()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)) {
		r.fail()
		return nil
	}
	p := r.b[:n]
	r.b = r.b[n:]
	return p
}

func (r *rbuf) str() string { return string(r.blob()) }

func (r *rbuf) empty() bool { return r.err != nil || len(r.b) == 0 }

// done reports the latched error, or ErrBadFrame if input remains.
func (r *rbuf) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return ErrBadFrame
	}
	return nil
}
