package netshard

import (
	"context"
	"errors"
	"net"
	"reflect"
	"testing"
	"time"

	"seqlog/internal/kvstore"
	"seqlog/internal/model"
	"seqlog/internal/storage"
)

// startServer serves tab/store on a loopback listener and returns a dialed
// client. Cleanup closes client then server.
func startServer(t *testing.T, tab *storage.Tables, store kvstore.Store, so ServerOptions) (*Client, *Server) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(tab, store, so)
	go srv.Serve(ln)
	cl, err := Dial(ln.Addr().String(), Options{})
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cl.Close()
		srv.Close()
	})
	return cl, srv
}

func memBackends(t *testing.T) (*Client, *storage.Tables) {
	t.Helper()
	store := kvstore.NewMemStore()
	tab := storage.NewTables(store)
	cl, _ := startServer(t, tab, store, ServerOptions{})
	return cl, tab
}

// TestNetShardRoundTrip drives every table's read and write surface through
// the wire and compares against direct local access — same rows in, same
// rows out, byte-for-byte via reflect.DeepEqual on the decoded forms.
func TestNetShardRoundTrip(t *testing.T) {
	cl, tab := memBackends(t)
	ctx := context.Background()

	// Seq table.
	events := []model.TraceEvent{{Activity: 1, TS: 100}, {Activity: 2, TS: 250}}
	if err := cl.AppendSeq(7, events); err != nil {
		t.Fatal(err)
	}
	if err := cl.AppendSeq(9, events[:1]); err != nil {
		t.Fatal(err)
	}
	got, ok, err := cl.GetSeq(ctx, 7)
	if err != nil || !ok || !reflect.DeepEqual(got, events) {
		t.Fatalf("GetSeq = %v, %v, %v; want %v", got, ok, err, events)
	}
	if _, ok, _ := cl.GetSeq(ctx, 999); ok {
		t.Fatal("GetSeq(999) found a row")
	}
	n, err := cl.NumTraces(ctx)
	if err != nil || n != 2 {
		t.Fatalf("NumTraces = %d, %v", n, err)
	}
	seen := map[model.TraceID]int{}
	if err := cl.ScanSeq(ctx, func(id model.TraceID, evs []model.TraceEvent) error {
		seen[id] = len(evs)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seen, map[model.TraceID]int{7: 2, 9: 1}) {
		t.Fatalf("ScanSeq saw %v", seen)
	}
	if err := cl.DeleteSeq(9); err != nil {
		t.Fatal(err)
	}
	if n, _ = cl.NumTraces(ctx); n != 1 {
		t.Fatalf("NumTraces after delete = %d", n)
	}

	// Index table.
	pair := model.NewPairKey(1, 2)
	entries := []storage.IndexEntry{{Trace: 7, TsA: 100, TsB: 250}, {Trace: 3, TsA: 50, TsB: 60}}
	if err := cl.AppendIndex("p1", pair, entries); err != nil {
		t.Fatal(err)
	}
	if err := cl.AppendIndex("p2", pair, entries[:1]); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		via  func() ([]storage.IndexEntry, error)
		ref  func() ([]storage.IndexEntry, error)
	}{
		{"GetIndex", func() ([]storage.IndexEntry, error) { return cl.GetIndex(ctx, "p1", pair) },
			func() ([]storage.IndexEntry, error) { return tab.GetIndex(ctx, "p1", pair) }},
		{"GetIndexAll", func() ([]storage.IndexEntry, error) { return cl.GetIndexAll(ctx, pair) },
			func() ([]storage.IndexEntry, error) { return tab.GetIndexAll(ctx, pair) }},
		{"GetIndexSorted", func() ([]storage.IndexEntry, error) { return cl.GetIndexSorted(ctx, "p1", pair) },
			func() ([]storage.IndexEntry, error) { return tab.GetIndexSorted(ctx, "p1", pair) }},
		{"GetIndexAllSorted", func() ([]storage.IndexEntry, error) { return cl.GetIndexAllSorted(ctx, pair) },
			func() ([]storage.IndexEntry, error) { return tab.GetIndexAllSorted(ctx, pair) }},
	} {
		got, err := tc.via()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want, err := tc.ref()
		if err != nil {
			t.Fatalf("%s local: %v", tc.name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s = %v, want %v", tc.name, got, want)
		}
	}
	p, err := cl.GetPostings(ctx, pair)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := tab.GetPostings(ctx, pair)
	if err != nil {
		t.Fatal(err)
	}
	if p.Total() != lp.Total() {
		t.Fatalf("GetPostings total %d, want %d", p.Total(), lp.Total())
	}
	pairsSeen := 0
	if err := cl.ScanIndex(ctx, "p1", func(pk model.PairKey, es []storage.IndexEntry) error {
		pairsSeen++
		if pk != pair || len(es) != 2 {
			t.Errorf("ScanIndex row %d/%v", pk, es)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if pairsSeen != 1 {
		t.Fatalf("ScanIndex saw %d pairs", pairsSeen)
	}
	if n, err := cl.NumIndexedPairs(ctx, "p1"); err != nil || n != 1 {
		t.Fatalf("NumIndexedPairs = %d, %v", n, err)
	}
	periods, err := cl.Periods(ctx)
	if err != nil || !reflect.DeepEqual(periods, []string{"p1", "p2"}) {
		t.Fatalf("Periods = %v, %v", periods, err)
	}
	if err := cl.DropPeriod("p2"); err != nil {
		t.Fatal(err)
	}
	if periods, _ = cl.Periods(ctx); !reflect.DeepEqual(periods, []string{"p1"}) {
		t.Fatalf("Periods after drop = %v", periods)
	}

	// Count tables.
	if err := cl.MergeCounts(1, []storage.CountEntry{{Other: 2, SumDuration: 150, Completions: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := cl.MergeCounts(1, []storage.CountEntry{{Other: 2, SumDuration: 10, Completions: 1}, {Other: 3, SumDuration: 5, Completions: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := cl.MergeReverseCounts(2, []storage.CountEntry{{Other: 1, SumDuration: 160, Completions: 2}}); err != nil {
		t.Fatal(err)
	}
	counts, err := cl.GetCounts(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []storage.CountEntry{{Other: 2, SumDuration: 160, Completions: 2}, {Other: 3, SumDuration: 5, Completions: 1}}
	if !reflect.DeepEqual(counts, want) {
		t.Fatalf("GetCounts = %v, want %v", counts, want)
	}
	rcounts, err := cl.GetReverseCounts(ctx, 2)
	if err != nil || len(rcounts) != 1 || rcounts[0].Completions != 2 {
		t.Fatalf("GetReverseCounts = %v, %v", rcounts, err)
	}
	e, ok, err := cl.GetPairCount(ctx, 1, 2)
	if err != nil || !ok || e.SumDuration != 160 || e.Completions != 2 {
		t.Fatalf("GetPairCount = %v, %v, %v", e, ok, err)
	}
	if _, ok, _ := cl.GetPairCount(ctx, 5, 6); ok {
		t.Fatal("GetPairCount(5,6) found")
	}

	// LastChecked table.
	if err := cl.MergeLastChecked(pair, map[model.TraceID]model.Timestamp{7: 250, 3: 60}); err != nil {
		t.Fatal(err)
	}
	m, err := cl.GetLastChecked(ctx, pair)
	if err != nil || !reflect.DeepEqual(m, map[model.TraceID]model.Timestamp{7: 250, 3: 60}) {
		t.Fatalf("GetLastChecked = %v, %v", m, err)
	}
	if err := cl.PruneLastChecked(map[model.TraceID]bool{3: true}); err != nil {
		t.Fatal(err)
	}
	if m, _ = cl.GetLastChecked(ctx, pair); len(m) != 1 {
		t.Fatalf("GetLastChecked after prune = %v", m)
	}

	// Meta table.
	if err := cl.PutMeta("policy", []byte("STNM")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := cl.GetMeta("policy")
	if err != nil || !ok || string(v) != "STNM" {
		t.Fatalf("GetMeta = %q, %v, %v", v, ok, err)
	}
	if _, ok, _ = cl.GetMeta("absent"); ok {
		t.Fatal("GetMeta(absent) found")
	}

	// Segments are not configured on this server: the typed sentinel must
	// survive the wire.
	if err := cl.FreezePostings(); !errors.Is(err, storage.ErrSegmentsDisabled) {
		t.Fatalf("FreezePostings = %v, want ErrSegmentsDisabled", err)
	}
	// And the message must be the server's verbatim (the differential
	// oracle compares error strings byte-for-byte).
	if err := cl.FreezePostings(); err.Error() != storage.ErrSegmentsDisabled.Error() {
		t.Fatalf("remote error string %q != local %q", err.Error(), storage.ErrSegmentsDisabled.Error())
	}

	if err := cl.Sync(); err != nil {
		t.Fatal(err)
	}
	if cl.NumShards() != 1 {
		t.Fatal("NumShards != 1")
	}
	// MemStore-backed server: no WAL, no group writer — the local contract.
	if cl.Batch() != nil {
		t.Fatal("Batch() non-nil over a WAL-less store")
	}
}

// TestNetShardBatchDurable ships a commit group to a disk-backed server and
// proves the acked group survives reopening the store.
func TestNetShardBatchDurable(t *testing.T) {
	dir := t.TempDir()
	store, err := kvstore.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	tab := storage.NewTables(store)
	cl, srv := startServer(t, tab, store, ServerOptions{})

	bw := cl.Batch()
	if bw == nil {
		t.Fatal("Batch() nil over a WAL-backed store")
	}
	if err := bw.BeginBatch(); err != nil {
		t.Fatal(err)
	}
	events := []model.TraceEvent{{Activity: 1, TS: 10}}
	if err := cl.AppendSeq(1, events); err != nil {
		t.Fatal(err)
	}
	if err := cl.AppendIndex("p", model.NewPairKey(1, 2), []storage.IndexEntry{{Trace: 1, TsA: 10, TsB: 20}}); err != nil {
		t.Fatal(err)
	}
	if err := cl.PutMeta("alphabet", []byte("a\x00b")); err != nil {
		t.Fatal(err)
	}
	// Nothing visible server-side until the group commits.
	if n, _ := tab.NumTraces(context.Background()); n != 0 {
		t.Fatalf("buffered write leaked to the server: %d traces", n)
	}
	if err := bw.CommitBatch(); err != nil {
		t.Fatal(err)
	}
	if n, _ := tab.NumTraces(context.Background()); n != 1 {
		t.Fatalf("committed group not applied: %d traces", n)
	}

	// An aborted group leaves no trace.
	if err := bw.BeginBatch(); err != nil {
		t.Fatal(err)
	}
	if err := cl.AppendSeq(2, events); err != nil {
		t.Fatal(err)
	}
	bw.AbortBatch(errors.New("test abort"))
	if n, _ := tab.NumTraces(context.Background()); n != 1 {
		t.Fatalf("aborted group applied: %d traces", n)
	}

	// Reopen: the acked group must be on disk.
	cl.Close()
	srv.Close()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	store2, err := kvstore.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	tab2 := storage.NewTables(store2)
	got, ok, err := tab2.GetSeq(context.Background(), 1)
	if err != nil || !ok || !reflect.DeepEqual(got, events) {
		t.Fatalf("after reopen GetSeq = %v, %v, %v", got, ok, err)
	}
	if v, ok, _ := tab2.GetMeta("alphabet"); !ok || string(v) != "a\x00b" {
		t.Fatalf("after reopen GetMeta = %q, %v", v, ok)
	}
}

// TestNetShardScanEarlyStop verifies the scan early-stop contract: the
// callback's error comes back verbatim and the client survives (fresh
// connection) for the next RPC.
func TestNetShardScanEarlyStop(t *testing.T) {
	cl, _ := memBackends(t)
	ctx := context.Background()
	for i := 0; i < 100; i++ {
		if err := cl.AppendSeq(model.TraceID(i), []model.TraceEvent{{Activity: 1, TS: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	stop := errors.New("stop here")
	n := 0
	err := cl.ScanSeq(ctx, func(model.TraceID, []model.TraceEvent) error {
		n++
		if n == 3 {
			return stop
		}
		return nil
	})
	if err != stop {
		t.Fatalf("ScanSeq early-stop error = %v, want %v", err, stop)
	}
	if got, _ := cl.NumTraces(ctx); got != 100 {
		t.Fatalf("client unusable after early stop: NumTraces = %d", got)
	}
}

// TestNetShardCancelBounded proves cancellation trips an in-flight RPC
// within a bounded wall-clock, not at the server's leisure: the server is
// made unresponsive by simply never answering (a connection to a listener
// that accepts and then sits silent).
func TestNetShardCancelBounded(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	defer close(done)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			// Answer the hello, then go silent.
			go func(c net.Conn) {
				defer c.Close()
				var h [8]byte
				c.Read(h[:])
				writeHello(c, flagWAL)
				<-done
			}(c)
		}
	}()
	cl, err := Dial(ln.Addr().String(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = cl.NumTraces(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("cancel took %v", d)
	}
}

// TestNetShardTypedTransportError asserts transport failures surface as
// *OpError with the op and address filled in.
func TestNetShardTypedTransportError(t *testing.T) {
	cl, _ := memBackends(t)
	// Grab the server address, then close everything server-side.
	if _, err := cl.NumTraces(context.Background()); err != nil {
		t.Fatal(err)
	}
	cl2, err := Dial(cl.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	cl.Close()
	if _, err := cl.NumTraces(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed client err = %v", err)
	}
}
