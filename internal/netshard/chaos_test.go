package netshard

import (
	"context"
	"errors"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"seqlog/internal/kvstore"
	"seqlog/internal/model"
	"seqlog/internal/storage"
)

// chaosProxy is a TCP proxy in front of a shard server — the network a
// remote store actually lives on. Modes are switched at runtime:
//
//	pass   — relay both directions
//	cut    — kill the connection after relaying cutAfter server bytes
//	stall  — accept and relay the request, then sit on the response
//	refuse — accept and immediately close
type chaosProxy struct {
	ln      net.Listener
	backend string
	mode    atomic.Int32
	cutAt   atomic.Int64
	wg      sync.WaitGroup

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

const (
	modePass int32 = iota
	modeCut
	modeStall
	modeRefuse
)

func newChaosProxy(t *testing.T, backend string) *chaosProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &chaosProxy{ln: ln, backend: backend, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.accept()
	t.Cleanup(p.Close)
	return p
}

func (p *chaosProxy) Addr() string { return p.ln.Addr().String() }

func (p *chaosProxy) Close() {
	p.ln.Close()
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *chaosProxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
}

func (p *chaosProxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
	c.Close()
}

func (p *chaosProxy) accept() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		if p.mode.Load() == modeRefuse {
			c.Close()
			continue
		}
		up, err := net.Dial("tcp", p.backend)
		if err != nil {
			c.Close()
			continue
		}
		p.track(c)
		p.track(up)
		p.wg.Add(2)
		go p.relay(up, c, false) // client -> server: requests always flow
		go p.relay(c, up, true)  // server -> client: the chaotic direction
	}
}

// relay copies src into dst, applying the chaos modes on the server->client
// leg. Closes both on exit so the peer relay unblocks.
func (p *chaosProxy) relay(dst, src net.Conn, chaotic bool) {
	defer p.wg.Done()
	defer p.untrack(dst)
	defer p.untrack(src)
	var relayed int64
	buf := make([]byte, 4096)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if chaotic {
				switch p.mode.Load() {
				case modeCut:
					cut := p.cutAt.Load()
					if relayed+int64(n) >= cut {
						dst.Write(buf[:max64(cut-relayed, 0)])
						return // drop both conns mid-frame
					}
				case modeStall:
					// Swallow the response until the conn dies under us.
					relayed += int64(n)
					continue
				}
			}
			relayed += int64(n)
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// startChaos stands up a real shard server with a chaos proxy in front and a
// client dialed through the proxy.
func startChaos(t *testing.T, rows int) (*Client, *chaosProxy) {
	t.Helper()
	store := kvstore.NewMemStore()
	tab := storage.NewTables(store)
	for i := 0; i < rows; i++ {
		if err := tab.AppendSeq(model.TraceID(i), []model.TraceEvent{{Activity: 1, TS: model.Timestamp(i)}, {Activity: 2, TS: model.Timestamp(i + 1000)}}); err != nil {
			t.Fatal(err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(tab, store, ServerOptions{})
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })

	proxy := newChaosProxy(t, ln.Addr().String())
	cl, err := Dial(proxy.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl, proxy
}

// TestChaosCutMidResponse: a connection dropped mid-frame surfaces as a
// typed *OpError (never a decoded half-answer), and the very next RPC
// transparently reconnects and succeeds.
func TestChaosCutMidResponse(t *testing.T) {
	cl, proxy := startChaos(t, 500)
	ctx := context.Background()

	// Sanity through the passing proxy.
	if n, err := cl.NumTraces(ctx); err != nil || n != 500 {
		t.Fatalf("NumTraces through proxy = %d, %v", n, err)
	}

	// Cut after a few KB: a multi-frame scan dies mid-stream.
	proxy.cutAt.Store(3000)
	proxy.mode.Store(modeCut)
	err := cl.ScanSeq(ctx, func(model.TraceID, []model.TraceEvent) error { return nil })
	if err == nil {
		t.Fatal("scan across a cut connection succeeded")
	}
	var oe *OpError
	if !errors.As(err, &oe) {
		t.Fatalf("cut error is %T (%v), want *OpError", err, err)
	}
	if oe.Op != "scan_seq" || oe.Addr == "" {
		t.Fatalf("OpError lacks context: %+v", oe)
	}

	// Heal the network: the client must dial a fresh conn and recover.
	proxy.mode.Store(modePass)
	before := cl.Reconnects()
	if n, err := cl.NumTraces(ctx); err != nil || n != 500 {
		t.Fatalf("post-heal NumTraces = %d, %v", n, err)
	}
	if cl.Reconnects() <= before {
		t.Fatalf("reconnect counter did not move: %d", cl.Reconnects())
	}
}

// TestChaosRefusedConn: with the proxy refusing connections the client
// reports a typed *OpError naming the dial, not a hang.
func TestChaosRefusedConn(t *testing.T) {
	cl, proxy := startChaos(t, 1)
	// Poison the pooled conn first so the next RPC has to dial.
	proxy.mode.Store(modeCut)
	proxy.cutAt.Store(0)
	cl.ScanSeq(context.Background(), func(model.TraceID, []model.TraceEvent) error { return nil })
	proxy.mode.Store(modeRefuse)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, err := cl.NumTraces(ctx)
	if err == nil {
		t.Fatal("RPC through refusing proxy succeeded")
	}
	var oe *OpError
	if !errors.As(err, &oe) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("refused-conn error is %T (%v), want *OpError or deadline", err, err)
	}
}

// TestChaosStallCancelBounded: a stalled network (request delivered, response
// never comes) must not wedge the caller — cancellation trips the RPC within
// a bounded wall clock and returns the context's own error.
func TestChaosStallCancelBounded(t *testing.T) {
	cl, proxy := startChaos(t, 100)
	proxy.mode.Store(modeStall)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := cl.NumTraces(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("stalled RPC err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("cancel over a stalled network took %v", d)
	}
}

// TestChaosNoGoroutineLeak hammers the client through every chaos mode with
// concurrent cancellations, then asserts the process converges back to its
// goroutine baseline — no watcher, relay, or pool goroutine outlives its RPC.
func TestChaosNoGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	// Built by hand (not startChaos) so the server is closed before the
	// leak check rather than by t.Cleanup after it.
	store := kvstore.NewMemStore()
	tab := storage.NewTables(store)
	for i := 0; i < 200; i++ {
		if err := tab.AppendSeq(model.TraceID(i), []model.TraceEvent{{Activity: 1, TS: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(tab, store, ServerOptions{})
	go srv.Serve(ln)
	proxy := newChaosProxy(t, ln.Addr().String())
	cl, err := Dial(proxy.Addr(), Options{})
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	modes := []int32{modePass, modeCut, modeStall, modePass, modeRefuse, modePass}
	proxy.cutAt.Store(1500)
	for round, m := range modes {
		proxy.mode.Store(m)
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
				defer cancel()
				switch i % 3 {
				case 0:
					cl.NumTraces(ctx)
				case 1:
					cl.ScanSeq(ctx, func(model.TraceID, []model.TraceEvent) error { return nil })
				default:
					cl.GetSeq(ctx, model.TraceID(i))
				}
			}(round*8 + i)
		}
		wg.Wait()
	}
	proxy.mode.Store(modePass)
	if _, err := cl.NumTraces(context.Background()); err != nil {
		t.Fatalf("client did not recover after chaos: %v", err)
	}

	cl.Close()
	proxy.Close()
	srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline {
		buf := make([]byte, 1<<16)
		t.Errorf("goroutines leaked after chaos: %d running, baseline %d\n%s",
			g, baseline, buf[:runtime.Stack(buf, true)])
	}
}

// TestChaosServerDeathMidStream kills the real server (not the proxy) while
// a scan is in flight: the client must fail typed, and once a new server is
// listening on the same address it must recover without a new Dial.
func TestChaosServerDeathMidStream(t *testing.T) {
	store := kvstore.NewMemStore()
	tab := storage.NewTables(store)
	// The scan response must span several stream frames (chunkTarget is
	// 4 MiB) so the server's death lands mid-stream, not after the whole
	// answer is already buffered client-side.
	evs := make([]model.TraceEvent, 400)
	for j := range evs {
		evs[j] = model.TraceEvent{Activity: model.ActivityID(j % 7), TS: model.Timestamp(j)}
	}
	for i := 0; i < 6000; i++ {
		if err := tab.AppendSeq(model.TraceID(i), evs); err != nil {
			t.Fatal(err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srv := NewServer(tab, store, ServerOptions{})
	go srv.Serve(ln)

	cl, err := Dial(addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	killed := false
	err = cl.ScanSeq(context.Background(), func(id model.TraceID, _ []model.TraceEvent) error {
		if !killed {
			killed = true
			srv.Close() // rip the server out mid-scan
		}
		return nil
	})
	if err == nil {
		t.Fatal("scan survived its server dying")
	}
	// Two legitimate typed outcomes, depending on who loses the race: the
	// connection dies under the client (*OpError), or the closing server
	// manages to flush its abort as a wire-level error first (remoteError).
	var oe *OpError
	var re *remoteError
	if !errors.As(err, &oe) && !errors.As(err, &re) {
		t.Fatalf("server-death error is %T (%v), want *OpError or remote error", err, err)
	}

	// Resurrect on the same address: the client's next RPC redials.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	srv2 := NewServer(tab, store, ServerOptions{})
	go srv2.Serve(ln2)
	defer srv2.Close()
	if n, err := cl.NumTraces(context.Background()); err != nil || n != 6000 {
		t.Fatalf("post-restart NumTraces = %d, %v", n, err)
	}
}
