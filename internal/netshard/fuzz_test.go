package netshard

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"net"
	"testing"

	"seqlog/internal/kvstore"
	"seqlog/internal/model"
	"seqlog/internal/storage"
)

// mustFrame encodes a payload as one wire frame.
func mustFrame(t testing.TB, payload []byte) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := writeFrame(&b, payload); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// FuzzNetFrame: the frame reader over arbitrary bytes must never panic,
// never allocate beyond the declared cap, and anything it accepts must
// round-trip through the writer as a fixpoint.
func FuzzNetFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(mustFrame(f, []byte{opPing}))
	f.Add(mustFrame(f, []byte{stOK, 1, 2, 3}))
	f.Add([]byte{0, 0, 0, 0})             // zero-length frame: invalid
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // 4 GiB declared: too large
	f.Add([]byte{0x80, 0x00, 0x00, 0x01}) // "negative" as int32: too large
	f.Add([]byte{0, 0, 0, 9, 1, 2})       // truncated body
	f.Fuzz(func(t *testing.T, raw []byte) {
		const max = 1 << 16
		payload, err := readFrame(bytes.NewReader(raw), nil, max)
		if err != nil {
			return
		}
		if len(payload) == 0 || len(payload) > max {
			t.Fatalf("accepted frame outside (0, max]: %d bytes", len(payload))
		}
		again, err := readFrame(bytes.NewReader(mustFrame(t, payload)), nil, max)
		if err != nil {
			t.Fatalf("re-read of a written frame failed: %v", err)
		}
		if !bytes.Equal(payload, again) {
			t.Fatalf("frame round-trip diverged: %x vs %x", payload, again)
		}
	})
}

// FuzzNetRequest: arbitrary request bodies against a live server dispatch
// must produce a response or a typed error — never a panic, never an
// unbounded allocation. Both the unary surface and the commit-group
// op-stream parser are exercised.
func FuzzNetRequest(f *testing.F) {
	// Seed every opcode with an empty body plus a few well-formed requests.
	for op := byte(1); op < opMax; op++ {
		f.Add(op, []byte{})
	}
	var w wbuf
	w.i64(7)
	f.Add(opGetSeq, append([]byte{}, w.b...))
	w = wbuf{}
	w.str("policy")
	f.Add(opGetMeta, append([]byte{}, w.b...))
	w = wbuf{}
	w.u64(1 << 60) // absurd count prefix: decoders must validate before allocating
	f.Add(opPruneLastChecked, append([]byte{}, w.b...))
	f.Add(opCommit, []byte{opAppendSeq, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F})

	store := kvstore.NewMemStore()
	tab := storage.NewTables(store)
	srv := NewServer(tab, store, ServerOptions{})
	f.Cleanup(func() { srv.Close(); tab.Close(); store.Close() })

	f.Fuzz(func(t *testing.T, op byte, body []byte) {
		if op == opCommit {
			srv.applyCommit(body)
			return
		}
		srv.unary(op, body)
	})
}

// TestCraftedFrames pins the adversarial-input contract end to end: frames
// declaring zero, huge, or sign-bit lengths fail with the typed sentinels
// BEFORE any allocation happens, on both sides of the wire.
func TestCraftedFrames(t *testing.T) {
	// Reader-level: the length prefix is validated against the cap first.
	for _, tc := range []struct {
		name string
		raw  []byte
		want error
	}{
		{"zero-length", []byte{0, 0, 0, 0}, ErrBadFrame},
		{"max-uint32", []byte{0xFF, 0xFF, 0xFF, 0xFF}, ErrFrameTooLarge},
		{"negative-int32", []byte{0x80, 0x00, 0x00, 0x01}, ErrFrameTooLarge},
		{"just-over-cap", binary.BigEndian.AppendUint32(nil, DefaultMaxFrame+1), ErrFrameTooLarge},
	} {
		_, err := readFrame(bytes.NewReader(tc.raw), nil, DefaultMaxFrame)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: readFrame err = %v, want %v", tc.name, err, tc.want)
		}
	}

	// Server-level: a client shipping a crafted header gets the typed wire
	// error back before the connection drops, and the server survives to
	// serve the next (honest) client.
	store := kvstore.NewMemStore()
	tab := storage.NewTables(store)
	if err := tab.AppendSeq(1, []model.TraceEvent{{Activity: 1, TS: 1}}); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(tab, store, ServerOptions{})
	go srv.Serve(ln)
	defer srv.Close()

	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if err := writeHello(raw, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := readHello(raw); err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	payload, err := readFrame(raw, nil, DefaultMaxFrame)
	if err != nil {
		t.Fatalf("server dropped the conn without a typed answer: %v", err)
	}
	if len(payload) < 2 || payload[0] != stErr || payload[1] != ecFrameTooLarge {
		t.Fatalf("crafted frame answer = %x, want stErr/ecFrameTooLarge", payload)
	}

	cl, err := Dial(ln.Addr().String(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if n, err := cl.NumTraces(context.Background()); err != nil || n != 1 {
		t.Fatalf("server unusable after crafted frame: %d, %v", n, err)
	}

	// Client-level: a response with an oversized declared length fails as a
	// typed *OpError wrapping ErrFrameTooLarge, not an OOM.
	lln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lln.Close()
	go func() {
		c, err := lln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		var h [8]byte
		c.Read(h[:])
		writeHello(c, 0)
		// Swallow the request frame, answer with a 4 GiB header.
		buf := make([]byte, 1024)
		c.Read(buf)
		c.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	}()
	evil, err := Dial(lln.Addr().String(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer evil.Close()
	_, err = evil.NumTraces(context.Background())
	var oe *OpError
	if !errors.As(err, &oe) || !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized response err = %v, want *OpError wrapping ErrFrameTooLarge", err)
	}

	// Commit-level: a group larger than the server's cap is refused with
	// the typed sentinel, not accumulated until memory runs out.
	ds, err := kvstore.OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	dtab := storage.NewTables(ds)
	defer dtab.Close()
	small := NewServer(dtab, ds, ServerOptions{MaxCommit: 4096})
	sln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go small.Serve(sln)
	defer small.Close()
	bc, err := Dial(sln.Addr().String(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	bw := bc.Batch()
	if bw == nil {
		t.Fatal("disk-backed server advertises no batch writer")
	}
	if err := bw.BeginBatch(); err != nil {
		t.Fatal(err)
	}
	if err := bc.PutMeta("blob", make([]byte, 16<<10)); err != nil {
		t.Fatal(err)
	}
	err = bw.CommitBatch()
	if !errors.Is(err, ErrCommitTooLarge) {
		t.Fatalf("oversized commit err = %v, want ErrCommitTooLarge", err)
	}
	// The group was rejected wholesale: nothing applied.
	if _, ok, _ := dtab.GetMeta("blob"); ok {
		t.Fatal("refused commit group leaked a write")
	}
}
