package netshard

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"seqlog/internal/kvstore"
	"seqlog/internal/model"
	"seqlog/internal/storage"
)

// ServerOptions tune a shard server.
type ServerOptions struct {
	// MaxFrame caps one inbound frame's payload (DefaultMaxFrame when 0).
	MaxFrame int
	// MaxCommit caps one commit group accumulated across opCommitChunk
	// frames (DefaultMaxCommit when 0).
	MaxCommit int64
	// Logf, when set, receives one line per connection-level failure.
	Logf func(format string, args ...any)
}

// Server exposes one store's storage.Backend surface over TCP. Reads run
// concurrently (the store and tables are safe for concurrent use); writes —
// including whole shipped commit groups — are serialized under one mutex,
// honouring the kvstore.BatchWriter no-concurrent-writers contract.
type Server struct {
	tab   *storage.Tables
	store kvstore.Store
	opts  ServerOptions

	wmu sync.Mutex // serializes every mutation and each whole commit group

	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps an opened single-store tables view and its store. The
// caller keeps ownership of both: Close stops serving but closes neither.
func NewServer(tab *storage.Tables, store kvstore.Store, opts ServerOptions) *Server {
	if opts.MaxFrame <= 0 {
		opts.MaxFrame = DefaultMaxFrame
	}
	if opts.MaxCommit <= 0 {
		opts.MaxCommit = DefaultMaxCommit
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		tab: tab, store: store, opts: opts,
		ctx: ctx, cancel: cancel,
		conns: make(map[net.Conn]struct{}),
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Serve accepts connections on ln until Close (or a listener error). It
// blocks; run it in its own goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.ctx.Err() != nil {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(c)
			c.Close()
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting, severs every live connection and waits for the
// handlers to drain. The tables and store stay open (the caller owns them).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.cancel()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

// hasWAL reports whether the store can group mutations crash-atomically.
func (s *Server) hasWAL() bool {
	_, ok := s.store.(kvstore.BatchWriter)
	return ok
}

// handle speaks the protocol on one connection until it errors or closes.
func (s *Server) handle(c net.Conn) {
	br := bufio.NewReaderSize(c, 64<<10)
	bw := bufio.NewWriterSize(c, 64<<10)
	if _, err := readHello(br); err != nil {
		s.logf("netshard: %s: bad hello: %v", c.RemoteAddr(), err)
		return
	}
	var flags byte
	if s.hasWAL() {
		flags |= flagWAL
	}
	if err := writeHello(c, flags); err != nil {
		return
	}
	maxFrame := uint32(s.opts.MaxFrame)
	var (
		frame   []byte
		pending []byte // accumulated opCommitChunk bytes for this conn
	)
	for {
		var err error
		frame, err = readFrame(br, frame, maxFrame)
		if err != nil {
			// A too-large or malformed frame gets a typed error response
			// before the connection is dropped: the stream position is
			// untrustworthy past a bad header, so no recovery is attempted.
			if code := errToCode(err); code == ecFrameTooLarge || code == ecBadFrame {
				s.writeErr(bw, err)
				bw.Flush()
			} else if s.ctx.Err() == nil && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("netshard: %s: read: %v", c.RemoteAddr(), err)
			}
			return
		}
		op, body := frame[0], frame[1:]
		if op == opCommitChunk {
			if int64(len(pending)+len(body)) > s.opts.MaxCommit {
				s.writeErr(bw, ErrCommitTooLarge)
				bw.Flush()
				return
			}
			pending = append(pending, body...)
			continue // chunks are unacknowledged; opCommit answers for all
		}
		if err := s.dispatch(bw, op, body, &pending); err != nil {
			// dispatch already wrote an error frame for application errors;
			// a non-nil return means the connection itself failed.
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) writeErr(w *bufio.Writer, err error) error {
	msg := err.Error()
	payload := make([]byte, 0, 2+len(msg))
	payload = append(payload, stErr, errToCode(err))
	payload = append(payload, msg...)
	return writeFrame(w, payload)
}

func writeOK(w *bufio.Writer, body []byte) error {
	payload := make([]byte, 0, 1+len(body))
	payload = append(payload, stOK)
	payload = append(payload, body...)
	return writeFrame(w, payload)
}

// dispatch handles one request frame: unary ops answer one stOK frame (or
// one stErr frame for application errors); streaming scans interleave stMore
// frames. The returned error is transport-level only.
func (s *Server) dispatch(w *bufio.Writer, op byte, body []byte, pending *[]byte) error {
	switch op {
	case opScanSeq:
		return s.scanSeq(w, body)
	case opScanIndex:
		return s.scanIndex(w, body)
	case opCommit:
		group := *pending
		*pending = nil
		if len(body) > 0 {
			if int64(len(group)+len(body)) > s.opts.MaxCommit {
				return s.writeErr(w, ErrCommitTooLarge)
			}
			group = append(group, body...)
		}
		if err := s.applyCommit(group); err != nil {
			return s.writeErr(w, err)
		}
		return writeOK(w, nil)
	}
	resp, err := s.unary(op, body)
	if err != nil {
		return s.writeErr(w, err)
	}
	return writeOK(w, resp)
}

// unary handles every non-streaming op and returns the response body.
func (s *Server) unary(op byte, body []byte) ([]byte, error) {
	r := &rbuf{b: body}
	var out wbuf
	switch op {
	case opPing:

	case opStatus:
		cs := s.tab.CacheStats()
		out.i64(cs.Hits)
		out.i64(cs.Misses)
		out.i64(cs.Evictions)
		out.i64(cs.Entries)
		out.i64(cs.Bytes)
		ss := s.tab.SegmentStats()
		out.i64(int64(ss.Segments))
		out.i64(ss.Rows)
		out.i64(ss.Entries)
		out.i64(ss.Bytes)
		out.i64(ss.Freezes)
		rec := s.tab.Recovery()
		out.i64(rec.SnapshotRecords)
		out.i64(rec.WALReplayed)
		out.i64(rec.TornTailBytes)
		out.i64(rec.StaleWALBytes)
		out.i64(rec.DroppedRegions)
		out.i64(rec.DroppedBytes)
		out.i64(rec.UncommittedBatchBytes)
		out.bool1(rec.Salvaged)
		out.i64(s.tab.ReadRows())

	case opGetMeta:
		key := r.str()
		if err := r.done(); err != nil {
			return nil, err
		}
		v, ok, err := s.tab.GetMeta(key)
		if err != nil {
			return nil, err
		}
		out.bool1(ok)
		out.blob(v)

	case opGetSeq:
		id := model.TraceID(r.u64())
		if err := r.done(); err != nil {
			return nil, err
		}
		events, ok, err := s.tab.GetSeq(s.ctx, id)
		if err != nil {
			return nil, err
		}
		out.bool1(ok)
		out.blob(storage.EncodeSeqRow(nil, events))

	case opNumTraces:
		n, err := s.tab.NumTraces(s.ctx)
		if err != nil {
			return nil, err
		}
		out.i64(int64(n))

	case opGetIndex, opGetIndexSorted:
		period := r.str()
		pair := model.PairKey(r.u64())
		if err := r.done(); err != nil {
			return nil, err
		}
		get := s.tab.GetIndex
		if op == opGetIndexSorted {
			get = s.tab.GetIndexSorted
		}
		entries, err := get(s.ctx, period, pair)
		if err != nil {
			return nil, err
		}
		out.blob(storage.EncodeIndexRow(nil, entries))

	case opGetIndexAll, opGetIndexAllSorted:
		pair := model.PairKey(r.u64())
		if err := r.done(); err != nil {
			return nil, err
		}
		get := s.tab.GetIndexAll
		if op == opGetIndexAllSorted {
			get = s.tab.GetIndexAllSorted
		}
		entries, err := get(s.ctx, pair)
		if err != nil {
			return nil, err
		}
		out.blob(storage.EncodeIndexRow(nil, entries))

	case opGetPostings:
		pair := model.PairKey(r.u64())
		if err := r.done(); err != nil {
			return nil, err
		}
		p, err := s.tab.GetPostings(s.ctx, pair)
		if err != nil {
			return nil, err
		}
		// Block runs are materialized server-side: the merge join consumes
		// runs independently and the final match sort is order-agnostic, so
		// shipping each run as a plain sorted slice preserves results
		// byte-for-byte while keeping the wire format block-free.
		out.u64(uint64(len(p.Runs)))
		for _, run := range p.Runs {
			entries := run.Entries
			if run.Blocks != nil {
				entries, err = run.Blocks.All()
				if err != nil {
					return nil, err
				}
			}
			out.blob(storage.EncodeIndexRow(nil, entries))
		}

	case opNumIndexedPairs:
		period := r.str()
		if err := r.done(); err != nil {
			return nil, err
		}
		n, err := s.tab.NumIndexedPairs(s.ctx, period)
		if err != nil {
			return nil, err
		}
		out.i64(int64(n))

	case opPeriods:
		ps, err := s.tab.Periods(s.ctx)
		if err != nil {
			return nil, err
		}
		out.u64(uint64(len(ps)))
		for _, p := range ps {
			out.str(p)
		}

	case opGetCounts, opGetRCounts:
		act := model.ActivityID(r.i64())
		if err := r.done(); err != nil {
			return nil, err
		}
		get := s.tab.GetCounts
		if op == opGetRCounts {
			get = s.tab.GetReverseCounts
		}
		entries, err := get(s.ctx, act)
		if err != nil {
			return nil, err
		}
		out.blob(storage.EncodeCountRow(nil, entries))

	case opGetPairCount:
		a := model.ActivityID(r.i64())
		b := model.ActivityID(r.i64())
		if err := r.done(); err != nil {
			return nil, err
		}
		e, ok, err := s.tab.GetPairCount(s.ctx, a, b)
		if err != nil {
			return nil, err
		}
		out.bool1(ok)
		out.i64(int64(e.Other))
		out.i64(e.SumDuration)
		out.i64(e.Completions)

	case opGetLastChecked:
		pair := model.PairKey(r.u64())
		if err := r.done(); err != nil {
			return nil, err
		}
		m, err := s.tab.GetLastChecked(s.ctx, pair)
		if err != nil {
			return nil, err
		}
		out.blob(storage.EncodeLastCheckedRow(nil, m))

	case opFreeze:
		s.wmu.Lock()
		err := s.tab.FreezePostings()
		s.wmu.Unlock()
		if err != nil {
			return nil, err
		}

	case opSync:
		s.wmu.Lock()
		err := s.syncStore()
		s.wmu.Unlock()
		if err != nil {
			return nil, err
		}

	case opSetCacheBudget:
		budget := r.i64()
		if err := r.done(); err != nil {
			return nil, err
		}
		s.tab.SetCacheBudget(budget)

	case opPutMeta, opAppendSeq, opDeleteSeq, opAppendIndex, opDropPeriod,
		opMergeCounts, opMergeRCounts, opMergeLastChecked, opPruneLastChecked:
		s.wmu.Lock()
		err := s.applyWrite(op, body)
		s.wmu.Unlock()
		if err != nil {
			return nil, err
		}

	default:
		return nil, fmt.Errorf("%w: unknown opcode %d", ErrBadFrame, op)
	}
	return out.b, nil
}

func (s *Server) syncStore() error {
	if sy, ok := s.store.(interface{ Sync() error }); ok {
		return sy.Sync()
	}
	return nil
}

// applyCommit applies one shipped commit group inside the store's own
// crash-atomic batch (one WAL group, one fsync) and returns only once the
// group is durable — the client's CommitBatch ack. Stores without a WAL
// (MemStore) apply the ops directly, mirroring the local fallback.
func (s *Server) applyCommit(group []byte) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	bw, _ := s.store.(kvstore.BatchWriter)
	if bw != nil {
		if err := bw.BeginBatch(); err != nil {
			return err
		}
	}
	if err := s.applyOps(group); err != nil {
		if bw != nil {
			bw.AbortBatch(err)
		}
		return err
	}
	if bw != nil {
		return bw.CommitBatch()
	}
	return nil
}

// applyOps replays a commit group's op stream: [op][uvarint len][body]...
func (s *Server) applyOps(group []byte) error {
	r := &rbuf{b: group}
	for !r.empty() {
		op := r.byte1()
		body := r.blob()
		if r.err != nil {
			return r.err
		}
		if err := s.applyWrite(op, body); err != nil {
			return err
		}
	}
	return r.done()
}

// applyWrite executes one mutation. Callers hold wmu.
func (s *Server) applyWrite(op byte, body []byte) error {
	r := &rbuf{b: body}
	switch op {
	case opPutMeta:
		key := r.str()
		value := r.blob()
		if err := r.done(); err != nil {
			return err
		}
		return s.tab.PutMeta(key, append([]byte(nil), value...))

	case opAppendSeq:
		id := model.TraceID(r.u64())
		row := r.blob()
		if err := r.done(); err != nil {
			return err
		}
		events, err := storage.DecodeSeqRow(row)
		if err != nil {
			return err
		}
		return s.tab.AppendSeq(id, events)

	case opDeleteSeq:
		id := model.TraceID(r.u64())
		if err := r.done(); err != nil {
			return err
		}
		return s.tab.DeleteSeq(id)

	case opAppendIndex:
		period := r.str()
		pair := model.PairKey(r.u64())
		row := r.blob()
		if err := r.done(); err != nil {
			return err
		}
		entries, err := storage.DecodeIndexRow(row)
		if err != nil {
			return err
		}
		return s.tab.AppendIndex(period, pair, entries)

	case opDropPeriod:
		period := r.str()
		if err := r.done(); err != nil {
			return err
		}
		return s.tab.DropPeriod(period)

	case opMergeCounts, opMergeRCounts:
		act := model.ActivityID(r.i64())
		row := r.blob()
		if err := r.done(); err != nil {
			return err
		}
		delta, err := storage.DecodeCountRow(row)
		if err != nil {
			return err
		}
		if op == opMergeCounts {
			return s.tab.MergeCounts(act, delta)
		}
		return s.tab.MergeReverseCounts(act, delta)

	case opMergeLastChecked:
		pair := model.PairKey(r.u64())
		row := r.blob()
		if err := r.done(); err != nil {
			return err
		}
		delta, err := storage.DecodeLastCheckedRow(row)
		if err != nil {
			return err
		}
		return s.tab.MergeLastChecked(pair, delta)

	case opPruneLastChecked:
		n := r.u64()
		if r.err != nil || n > uint64(len(r.b)) { // >= 1 byte per id
			return ErrBadFrame
		}
		traces := make(map[model.TraceID]bool, n)
		for i := uint64(0); i < n; i++ {
			traces[model.TraceID(r.u64())] = true
		}
		if err := r.done(); err != nil {
			return err
		}
		return s.tab.PruneLastChecked(traces)
	}
	return fmt.Errorf("%w: opcode %d is not a mutation", ErrBadFrame, op)
}

// scanSeq streams every Seq row in batched stMore frames, then a final stOK.
func (s *Server) scanSeq(w *bufio.Writer, body []byte) error {
	if len(body) != 0 {
		return s.writeErr(w, ErrBadFrame)
	}
	batch := wbuf{b: []byte{stMore}}
	scanErr := s.tab.ScanSeq(s.ctx, func(id model.TraceID, events []model.TraceEvent) error {
		batch.u64(uint64(id))
		batch.blob(storage.EncodeSeqRow(nil, events))
		if len(batch.b) >= chunkTarget {
			if err := writeFrame(w, batch.b); err != nil {
				return err
			}
			batch.b = batch.b[:1]
		}
		return nil
	})
	if scanErr != nil {
		return s.writeErr(w, scanErr)
	}
	batch.b[0] = stOK
	return writeFrame(w, batch.b)
}

// scanIndex streams one partition's pair rows like scanSeq.
func (s *Server) scanIndex(w *bufio.Writer, body []byte) error {
	r := &rbuf{b: body}
	period := r.str()
	if err := r.done(); err != nil {
		return s.writeErr(w, err)
	}
	batch := wbuf{b: []byte{stMore}}
	scanErr := s.tab.ScanIndex(s.ctx, period, func(pair model.PairKey, entries []storage.IndexEntry) error {
		batch.u64(uint64(pair))
		batch.blob(storage.EncodeIndexRow(nil, entries))
		if len(batch.b) >= chunkTarget {
			if err := writeFrame(w, batch.b); err != nil {
				return err
			}
			batch.b = batch.b[:1]
		}
		return nil
	})
	if scanErr != nil {
		return s.writeErr(w, scanErr)
	}
	batch.b[0] = stOK
	return writeFrame(w, batch.b)
}
