package netshard

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"seqlog/internal/kvstore"
	"seqlog/internal/metrics"
	"seqlog/internal/model"
	"seqlog/internal/storage"
)

// Options tune a shard client.
type Options struct {
	// Shard is the shard number this client serves, used as the metrics
	// label (seqlog_netshard_rpc_seconds{shard="N",op="..."}).
	Shard int
	// MaxFrame caps one inbound response frame (DefaultMaxFrame when 0).
	MaxFrame int
	// PoolSize bounds concurrent connections to the server (default 4);
	// excess RPCs queue on a semaphore.
	PoolSize int
	// DialTimeout bounds each dial (default 5s).
	DialTimeout time.Duration
	// StatusTTL is how long cached server stats (CacheStats, SegmentStats,
	// Recovery) stay fresh before the next call re-fetches them (default
	// 1s). Stats feed metrics scrapes, not query results, so staleness is
	// harmless and keeps scrapes from hammering the server.
	StatusTTL time.Duration
	// Dialer overrides the TCP dialer (tests inject chaos proxies without
	// touching routing). nil uses net.Dialer.
	Dialer func(ctx context.Context, addr string) (net.Conn, error)
}

// Client implements storage.Backend against one remote shard server. Reads
// are ctx-first and cancellable mid-RPC: a watcher goroutine trips the
// connection deadline the moment ctx is done, so cancel latency is bounded
// by a socket wakeup, not a response arrival; the interrupted connection is
// discarded and the caller sees ctx.Err(). Writes follow the Backend
// contract (context-free); between BeginBatch and CommitBatch they buffer
// locally and ship as one commit group, applied inside the server store's
// own WAL batch — one group commit per remote store, acked after its fsync.
type Client struct {
	addr  string
	opts  Options
	flags atomic.Uint32 // server hello flags, refreshed per dial

	mu     sync.Mutex
	idle   []*cconn
	closed bool
	sem    chan struct{}

	batMu sync.Mutex
	bat   []byte // open commit group's op stream; nil when no batch is open

	rows       atomic.Int64 // rows decoded from responses (ReadRows proxy)
	reconnects atomic.Int64 // dials after the first
	rpcErrs    atomic.Int64
	inflight   atomic.Int64
	dialed     atomic.Bool

	stMu sync.Mutex
	st   statusSnapshot
	stAt time.Time

	hists [opMax]*metrics.Histogram // nil until SetMetrics
}

type statusSnapshot struct {
	cache    storage.CacheStats
	seg      storage.SegmentStats
	rec      kvstore.RecoveryStats
	readRows int64
}

type cconn struct {
	c    net.Conn
	rbuf []byte
}

var _ storage.Backend = (*Client)(nil)

// Dial connects to a shard server, performs the hello exchange and returns
// a ready client. The initial connection is kept in the pool.
func Dial(addr string, opts Options) (*Client, error) {
	if opts.MaxFrame <= 0 {
		opts.MaxFrame = DefaultMaxFrame
	}
	if opts.PoolSize <= 0 {
		opts.PoolSize = 4
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	if opts.StatusTTL <= 0 {
		opts.StatusTTL = time.Second
	}
	c := &Client{
		addr: addr,
		opts: opts,
		sem:  make(chan struct{}, opts.PoolSize),
	}
	ctx, cancel := context.WithTimeout(context.Background(), opts.DialTimeout)
	defer cancel()
	cc, err := c.dial(ctx)
	if err != nil {
		return nil, err
	}
	c.put(cc)
	return c, nil
}

// Addr returns the shard server address this client talks to.
func (c *Client) Addr() string { return c.addr }

func (c *Client) dial(ctx context.Context) (*cconn, error) {
	dial := c.opts.Dialer
	if dial == nil {
		d := &net.Dialer{}
		dial = func(ctx context.Context, addr string) (net.Conn, error) {
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	dctx, cancel := context.WithTimeout(ctx, c.opts.DialTimeout)
	defer cancel()
	conn, err := dial(dctx, c.addr)
	if err != nil {
		return nil, &OpError{Addr: c.addr, Op: "dial", Err: err}
	}
	if dl, ok := dctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}
	if err := writeHello(conn, 0); err != nil {
		conn.Close()
		return nil, &OpError{Addr: c.addr, Op: "hello", Err: err}
	}
	flags, err := readHello(conn)
	if err != nil {
		conn.Close()
		return nil, &OpError{Addr: c.addr, Op: "hello", Err: err}
	}
	conn.SetDeadline(time.Time{})
	if c.dialed.Swap(true) {
		c.reconnects.Add(1)
	}
	c.flags.Store(uint32(flags))
	return &cconn{c: conn}, nil
}

func (c *Client) put(cc *cconn) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		cc.c.Close()
		return
	}
	c.idle = append(c.idle, cc)
	c.mu.Unlock()
}

// conn returns a pooled connection or dials a fresh one. pooled reports
// which: a pooled connection may have died while idle (server restart), so
// request-write failures on one are retried on a fresh dial.
func (c *Client) conn(ctx context.Context) (cc *cconn, pooled bool, err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, false, ErrClosed
	}
	if n := len(c.idle); n > 0 {
		cc := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return cc, true, nil
	}
	c.mu.Unlock()
	cc, err = c.dial(ctx)
	return cc, false, err
}

// flushIdle drops every pooled connection: once one idle conn proves dead,
// its poolmates are from the same dead epoch.
func (c *Client) flushIdle() {
	c.mu.Lock()
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	for _, cc := range idle {
		cc.c.Close()
	}
}

// Close severs every pooled connection; later calls fail ErrClosed. Safe to
// call more than once.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	for _, cc := range idle {
		cc.c.Close()
	}
	return nil
}

// do runs one RPC: acquire a pool slot, check out a connection, write the
// request frame, consume response frames through onBody (called once per
// stOK/stMore frame body, in order). Transport failures poison the
// connection and come back as *OpError — or as ctx.Err() verbatim when the
// context fired, so cancellation is indistinguishable from a local
// backend's. Server-reported errors keep the connection and come back with
// the server's message verbatim.
func (c *Client) do(ctx context.Context, op byte, req []byte, onBody func([]byte) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.inflight.Add(1)
	start := time.Now()
	defer func() {
		c.inflight.Add(-1)
		if h := c.hists[op]; h != nil {
			h.Observe(time.Since(start))
		}
	}()
	select {
	case c.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-c.sem }()
	for attempt := 0; ; attempt++ {
		cc, pooled, err := c.conn(ctx)
		if err != nil {
			c.rpcErrs.Add(1)
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		err, keep, stale := c.roundTrip(ctx, cc, op, req, onBody)
		if keep {
			c.put(cc)
		} else {
			cc.c.Close()
		}
		// A request-write failure on a pooled connection means the server
		// never saw a complete frame — the conn simply died while idle
		// (server restart). Safe to retry any op once on a fresh dial.
		if stale && pooled && attempt == 0 {
			c.flushIdle()
			continue
		}
		if err != nil {
			c.rpcErrs.Add(1)
		}
		return err
	}
}

// roundTrip performs the frame exchange on one connection. keep reports
// whether the connection is still in a known-good protocol state; stale
// reports that the request frame itself failed to write without the context
// firing — the server never received the request, so the caller may safely
// retry on another connection.
func (c *Client) roundTrip(ctx context.Context, cc *cconn, op byte, req []byte, onBody func([]byte) error) (err error, keep, stale bool) {
	var fired atomic.Bool
	if done := ctx.Done(); done != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-done:
				fired.Store(true)
				// Trip the in-flight read/write immediately: bounded cancel
				// latency without waiting for the server's next frame.
				cc.c.SetDeadline(time.Unix(1, 0))
			case <-stop:
			}
		}()
	}
	xerr := func(e error) (error, bool, bool) {
		if fired.Load() || ctx.Err() != nil {
			return ctx.Err(), false, false
		}
		return &OpError{Addr: c.addr, Op: opName(op), Err: e}, false, false
	}
	frame := make([]byte, 0, 1+len(req))
	frame = append(frame, op)
	frame = append(frame, req...)
	if err := writeFrame(cc.c, frame); err != nil {
		if fired.Load() || ctx.Err() != nil {
			return ctx.Err(), false, false
		}
		return &OpError{Addr: c.addr, Op: opName(op), Err: err}, false, true
	}
	for {
		payload, err := readFrame(connReader{cc.c}, cc.rbuf, uint32(c.opts.MaxFrame))
		if err != nil {
			return xerr(err)
		}
		cc.rbuf = payload[:0]
		st, body := payload[0], payload[1:]
		switch st {
		case stErr:
			if len(body) < 1 {
				return xerr(ErrBadFrame)
			}
			// The connection is clean: an error response completes the
			// exchange.
			return &remoteError{code: body[0], msg: string(body[1:])}, true, false
		case stMore, stOK:
			if len(body) > 0 {
				if fnErr := onBody(body); fnErr != nil {
					// On the final frame the exchange is complete and the
					// connection stays good; mid-stream the server is still
					// sending, so drop the connection rather than drain it.
					// Either way the callback's error is the caller's (scan
					// early-stop contract).
					return fnErr, st == stOK, false
				}
			}
			if st == stOK {
				return nil, true, false
			}
		default:
			return xerr(fmt.Errorf("%w: unknown status %d", ErrBadFrame, st))
		}
	}
}

// connReader adapts net.Conn for readFrame without a bufio layer: response
// frames arrive back-to-back per RPC and the frame reader already reads in
// exactly-sized chunks.
type connReader struct{ c net.Conn }

func (r connReader) Read(p []byte) (int, error) { return r.c.Read(p) }

// call is the unary wrapper: at most one response body expected.
func (c *Client) call(ctx context.Context, op byte, req []byte) ([]byte, error) {
	var out []byte
	err := c.do(ctx, op, req, func(b []byte) error {
		out = append(out, b...) // copy: b aliases the pooled read buffer
		return nil
	})
	return out, err
}

// write routes a mutation: buffered into the open commit group when a batch
// is open (shipped and made durable at CommitBatch), an immediate RPC
// otherwise.
func (c *Client) write(op byte, body []byte) error {
	c.batMu.Lock()
	if c.bat != nil {
		c.bat = append(c.bat, op)
		c.bat = appendUvarint(c.bat, uint64(len(body)))
		c.bat = append(c.bat, body...)
		c.batMu.Unlock()
		return nil
	}
	c.batMu.Unlock()
	_, err := c.call(context.Background(), op, body)
	return err
}

func appendUvarint(b []byte, v uint64) []byte {
	var w wbuf
	w.b = b
	w.u64(v)
	return w.b
}

// ---- storage.Backend: Seq table ---------------------------------------------

// AppendSeq appends events to the trace's Seq row on the remote store.
func (c *Client) AppendSeq(id model.TraceID, events []model.TraceEvent) error {
	var w wbuf
	w.u64(uint64(id))
	w.blob(storage.EncodeSeqRow(nil, events))
	return c.write(opAppendSeq, w.b)
}

// GetSeq reads the trace's stored sequence.
func (c *Client) GetSeq(ctx context.Context, id model.TraceID) ([]model.TraceEvent, bool, error) {
	var w wbuf
	w.u64(uint64(id))
	resp, err := c.call(ctx, opGetSeq, w.b)
	if err != nil {
		return nil, false, err
	}
	r := &rbuf{b: resp}
	ok := r.bool1()
	row := r.blob()
	if err := r.done(); err != nil {
		return nil, false, &OpError{Addr: c.addr, Op: opName(opGetSeq), Err: err}
	}
	if !ok {
		return nil, false, nil
	}
	events, err := storage.DecodeSeqRow(row)
	if err != nil {
		return nil, false, err
	}
	c.rows.Add(int64(len(events)))
	return events, true, nil
}

// DeleteSeq prunes the trace's Seq row.
func (c *Client) DeleteSeq(id model.TraceID) error {
	var w wbuf
	w.u64(uint64(id))
	return c.write(opDeleteSeq, w.b)
}

// ScanSeq streams every Seq row; fn errors stop the scan (and discard the
// connection, since the server may still be sending).
func (c *Client) ScanSeq(ctx context.Context, fn func(model.TraceID, []model.TraceEvent) error) error {
	return c.do(ctx, opScanSeq, nil, func(body []byte) error {
		r := &rbuf{b: body}
		for !r.empty() {
			id := model.TraceID(r.u64())
			row := r.blob()
			if r.err != nil {
				return r.err
			}
			events, err := storage.DecodeSeqRow(row)
			if err != nil {
				return err
			}
			c.rows.Add(int64(len(events)))
			if err := fn(id, events); err != nil {
				return err
			}
		}
		return r.done()
	})
}

// NumTraces counts the remote store's Seq rows.
func (c *Client) NumTraces(ctx context.Context) (int, error) {
	resp, err := c.call(ctx, opNumTraces, nil)
	if err != nil {
		return 0, err
	}
	r := &rbuf{b: resp}
	n := r.i64()
	if err := r.done(); err != nil {
		return 0, &OpError{Addr: c.addr, Op: opName(opNumTraces), Err: err}
	}
	return int(n), nil
}

// ---- storage.Backend: Index table -------------------------------------------

// AppendIndex appends entries to the pair's posting row.
func (c *Client) AppendIndex(period string, pair model.PairKey, entries []storage.IndexEntry) error {
	var w wbuf
	w.str(period)
	w.u64(uint64(pair))
	w.blob(storage.EncodeIndexRow(nil, entries))
	return c.write(opAppendIndex, w.b)
}

func (c *Client) getIndex(ctx context.Context, op byte, req []byte) ([]storage.IndexEntry, error) {
	resp, err := c.call(ctx, op, req)
	if err != nil {
		return nil, err
	}
	r := &rbuf{b: resp}
	row := r.blob()
	if err := r.done(); err != nil {
		return nil, &OpError{Addr: c.addr, Op: opName(op), Err: err}
	}
	entries, err := storage.DecodeIndexRow(row)
	if err != nil {
		return nil, err
	}
	c.rows.Add(int64(len(entries)))
	return entries, nil
}

// GetIndex reads one pair row of one period.
func (c *Client) GetIndex(ctx context.Context, period string, pair model.PairKey) ([]storage.IndexEntry, error) {
	var w wbuf
	w.str(period)
	w.u64(uint64(pair))
	return c.getIndex(ctx, opGetIndex, w.b)
}

// GetIndexAll reads the pair's rows across all periods.
func (c *Client) GetIndexAll(ctx context.Context, pair model.PairKey) ([]storage.IndexEntry, error) {
	var w wbuf
	w.u64(uint64(pair))
	return c.getIndex(ctx, opGetIndexAll, w.b)
}

// GetIndexSorted reads one pair row pre-sorted by the server's postings
// cache.
func (c *Client) GetIndexSorted(ctx context.Context, period string, pair model.PairKey) ([]storage.IndexEntry, error) {
	var w wbuf
	w.str(period)
	w.u64(uint64(pair))
	return c.getIndex(ctx, opGetIndexSorted, w.b)
}

// GetIndexAllSorted reads the pair's cross-period sorted row.
func (c *Client) GetIndexAllSorted(ctx context.Context, pair model.PairKey) ([]storage.IndexEntry, error) {
	var w wbuf
	w.u64(uint64(pair))
	return c.getIndex(ctx, opGetIndexAllSorted, w.b)
}

// GetPostings fetches the pair's sorted runs. Segment block runs are
// materialized server-side; the merge join consumes runs independently and
// sorts matches at the end, so results are byte-identical to local reads.
func (c *Client) GetPostings(ctx context.Context, pair model.PairKey) (storage.Postings, error) {
	var w wbuf
	w.u64(uint64(pair))
	resp, err := c.call(ctx, opGetPostings, w.b)
	if err != nil {
		return storage.Postings{}, err
	}
	r := &rbuf{b: resp}
	n := r.u64()
	if r.err != nil || n > uint64(len(r.b)) { // >= 1 byte per run
		return storage.Postings{}, &OpError{Addr: c.addr, Op: opName(opGetPostings), Err: ErrBadFrame}
	}
	var p storage.Postings
	if n > 0 {
		p.Runs = make([]storage.PostingsRun, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		row := r.blob()
		if r.err != nil {
			return storage.Postings{}, &OpError{Addr: c.addr, Op: opName(opGetPostings), Err: ErrBadFrame}
		}
		entries, err := storage.DecodeIndexRow(row)
		if err != nil {
			return storage.Postings{}, err
		}
		c.rows.Add(int64(len(entries)))
		if len(entries) == 0 {
			continue
		}
		p.Runs = append(p.Runs, storage.PostingsRun{Entries: entries})
	}
	if err := r.done(); err != nil {
		return storage.Postings{}, &OpError{Addr: c.addr, Op: opName(opGetPostings), Err: err}
	}
	return p, nil
}

// ScanIndex streams one partition's pair rows.
func (c *Client) ScanIndex(ctx context.Context, period string, fn func(model.PairKey, []storage.IndexEntry) error) error {
	var w wbuf
	w.str(period)
	return c.do(ctx, opScanIndex, w.b, func(body []byte) error {
		r := &rbuf{b: body}
		for !r.empty() {
			pair := model.PairKey(r.u64())
			row := r.blob()
			if r.err != nil {
				return r.err
			}
			entries, err := storage.DecodeIndexRow(row)
			if err != nil {
				return err
			}
			c.rows.Add(int64(len(entries)))
			if err := fn(pair, entries); err != nil {
				return err
			}
		}
		return r.done()
	})
}

// NumIndexedPairs counts one partition's distinct pairs.
func (c *Client) NumIndexedPairs(ctx context.Context, period string) (int, error) {
	var w wbuf
	w.str(period)
	resp, err := c.call(ctx, opNumIndexedPairs, w.b)
	if err != nil {
		return 0, err
	}
	r := &rbuf{b: resp}
	n := r.i64()
	if err := r.done(); err != nil {
		return 0, &OpError{Addr: c.addr, Op: opName(opNumIndexedPairs), Err: err}
	}
	return int(n), nil
}

// DropPeriod retires the partition on the remote store.
func (c *Client) DropPeriod(period string) error {
	var w wbuf
	w.str(period)
	return c.write(opDropPeriod, w.b)
}

// Periods lists the remote store's registered partitions (sorted).
func (c *Client) Periods(ctx context.Context) ([]string, error) {
	resp, err := c.call(ctx, opPeriods, nil)
	if err != nil {
		return nil, err
	}
	r := &rbuf{b: resp}
	n := r.u64()
	if r.err != nil || n > uint64(len(r.b)) { // >= 1 byte per period
		return nil, &OpError{Addr: c.addr, Op: opName(opPeriods), Err: ErrBadFrame}
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, r.str())
	}
	if err := r.done(); err != nil {
		return nil, &OpError{Addr: c.addr, Op: opName(opPeriods), Err: err}
	}
	return out, nil
}

// FreezePostings folds the remote memtable tier into a segment file.
func (c *Client) FreezePostings() error {
	_, err := c.call(context.Background(), opFreeze, nil)
	return err
}

// ---- storage.Backend: Count tables ------------------------------------------

// MergeCounts folds a Count delta into the remote store.
func (c *Client) MergeCounts(first model.ActivityID, delta []storage.CountEntry) error {
	var w wbuf
	w.i64(int64(first))
	w.blob(storage.EncodeCountRow(nil, delta))
	return c.write(opMergeCounts, w.b)
}

// MergeReverseCounts folds a Reverse Count delta into the remote store.
func (c *Client) MergeReverseCounts(second model.ActivityID, delta []storage.CountEntry) error {
	var w wbuf
	w.i64(int64(second))
	w.blob(storage.EncodeCountRow(nil, delta))
	return c.write(opMergeRCounts, w.b)
}

func (c *Client) getCounts(ctx context.Context, op byte, act model.ActivityID) ([]storage.CountEntry, error) {
	var w wbuf
	w.i64(int64(act))
	resp, err := c.call(ctx, op, w.b)
	if err != nil {
		return nil, err
	}
	r := &rbuf{b: resp}
	row := r.blob()
	if err := r.done(); err != nil {
		return nil, &OpError{Addr: c.addr, Op: opName(op), Err: err}
	}
	entries, err := storage.DecodeCountRow(row)
	if err != nil {
		return nil, err
	}
	c.rows.Add(int64(len(entries)))
	return entries, nil
}

// GetCounts reads the activity's (partial) Count row.
func (c *Client) GetCounts(ctx context.Context, first model.ActivityID) ([]storage.CountEntry, error) {
	return c.getCounts(ctx, opGetCounts, first)
}

// GetReverseCounts reads the activity's (partial) Reverse Count row.
func (c *Client) GetReverseCounts(ctx context.Context, second model.ActivityID) ([]storage.CountEntry, error) {
	return c.getCounts(ctx, opGetRCounts, second)
}

// GetPairCount reads one (a, b) Count entry.
func (c *Client) GetPairCount(ctx context.Context, a, b model.ActivityID) (storage.CountEntry, bool, error) {
	var w wbuf
	w.i64(int64(a))
	w.i64(int64(b))
	resp, err := c.call(ctx, opGetPairCount, w.b)
	if err != nil {
		return storage.CountEntry{}, false, err
	}
	r := &rbuf{b: resp}
	ok := r.bool1()
	e := storage.CountEntry{
		Other:       model.ActivityID(r.i64()),
		SumDuration: r.i64(),
		Completions: r.i64(),
	}
	if err := r.done(); err != nil {
		return storage.CountEntry{}, false, &OpError{Addr: c.addr, Op: opName(opGetPairCount), Err: err}
	}
	if !ok {
		return storage.CountEntry{}, false, nil
	}
	c.rows.Add(1)
	return e, true, nil
}

// ---- storage.Backend: LastChecked table -------------------------------------

// GetLastChecked reads the pair's watermark row.
func (c *Client) GetLastChecked(ctx context.Context, pair model.PairKey) (map[model.TraceID]model.Timestamp, error) {
	var w wbuf
	w.u64(uint64(pair))
	resp, err := c.call(ctx, opGetLastChecked, w.b)
	if err != nil {
		return nil, err
	}
	r := &rbuf{b: resp}
	row := r.blob()
	if err := r.done(); err != nil {
		return nil, &OpError{Addr: c.addr, Op: opName(opGetLastChecked), Err: err}
	}
	m, err := storage.DecodeLastCheckedRow(row)
	if err != nil {
		return nil, err
	}
	c.rows.Add(int64(len(m)))
	return m, nil
}

// MergeLastChecked folds watermarks into the pair's row.
func (c *Client) MergeLastChecked(pair model.PairKey, delta map[model.TraceID]model.Timestamp) error {
	var w wbuf
	w.u64(uint64(pair))
	w.blob(storage.EncodeLastCheckedRow(nil, delta))
	return c.write(opMergeLastChecked, w.b)
}

// PruneLastChecked removes the traces' watermarks on the remote store.
func (c *Client) PruneLastChecked(traces map[model.TraceID]bool) error {
	ids := make([]model.TraceID, 0, len(traces))
	for id := range traces {
		ids = append(ids, id)
	}
	// Deterministic order keeps shipped commit groups reproducible.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	var w wbuf
	w.u64(uint64(len(ids)))
	for _, id := range ids {
		w.u64(uint64(id))
	}
	return c.write(opPruneLastChecked, w.b)
}

// ---- storage.Backend: Meta table --------------------------------------------

// PutMeta replicates one metadata row to the remote store.
func (c *Client) PutMeta(key string, value []byte) error {
	var w wbuf
	w.str(key)
	w.blob(value)
	return c.write(opPutMeta, w.b)
}

// GetMeta reads one metadata row. Unlike the table reads, Backend declares
// it context-free, so it uses a background context internally.
func (c *Client) GetMeta(key string) ([]byte, bool, error) {
	var w wbuf
	w.str(key)
	resp, err := c.call(context.Background(), opGetMeta, w.b)
	if err != nil {
		return nil, false, err
	}
	r := &rbuf{b: resp}
	ok := r.bool1()
	v := r.blob()
	if err := r.done(); err != nil {
		return nil, false, &OpError{Addr: c.addr, Op: opName(opGetMeta), Err: err}
	}
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

// ---- storage.Backend: batching, observability, lifecycle --------------------

// Batch returns the client's group writer when the remote store keeps a WAL
// (advertised in the hello), or nil so callers fall back to plain writes —
// the exact local MemStore contract. Mutations between BeginBatch and
// CommitBatch buffer locally and ship as one commit group; the server
// applies them inside its store's own BeginBatch/CommitBatch, so the group
// is crash-atomic and durable (one fsync) before the ack.
func (c *Client) Batch() kvstore.BatchWriter {
	if byte(c.flags.Load())&flagWAL == 0 {
		return nil
	}
	return (*clientBatch)(c)
}

// clientBatch implements kvstore.BatchWriter over the client's buffered
// commit group. Callers serialize per the BatchWriter contract.
type clientBatch Client

func (b *clientBatch) BeginBatch() error {
	c := (*Client)(b)
	c.batMu.Lock()
	defer c.batMu.Unlock()
	if c.bat != nil {
		return fmt.Errorf("netshard: batch already open")
	}
	c.bat = []byte{}
	return nil
}

func (b *clientBatch) CommitBatch() error {
	c := (*Client)(b)
	c.batMu.Lock()
	group := c.bat
	c.bat = nil
	c.batMu.Unlock()
	if group == nil {
		return fmt.Errorf("netshard: no open batch")
	}
	if len(group) == 0 {
		return nil // nothing to make durable
	}
	return c.commit(group)
}

func (b *clientBatch) AbortBatch(cause error) {
	c := (*Client)(b)
	c.batMu.Lock()
	c.bat = nil
	c.batMu.Unlock()
}

// commit ships one op-stream group: oversized groups split into
// opCommitChunk frames (accumulated server-side), the final opCommit frame
// applies the whole group and answers once it is durable.
func (c *Client) commit(group []byte) error {
	max := c.opts.MaxFrame - 64
	chunk := chunkTarget
	if chunk > max {
		chunk = max
	}
	ctx := context.Background()
	c.inflight.Add(1)
	start := time.Now()
	defer func() {
		c.inflight.Add(-1)
		if h := c.hists[opCommit]; h != nil {
			h.Observe(time.Since(start))
		}
	}()
	c.sem <- struct{}{}
	defer func() { <-c.sem }()
	for attempt := 0; ; attempt++ {
		cc, pooled, err := c.conn(ctx)
		if err != nil {
			c.rpcErrs.Add(1)
			return err
		}
		// Chunks and the final commit ride one connection: the server keys
		// its accumulation on the connection. Only a failure on the very
		// first write proves the server never saw any of the group, so only
		// that is retried on a stale pooled connection.
		rest := group
		first := true
		var cerr error
		stale := false
		for len(rest) > chunk {
			frame := make([]byte, 0, 1+chunk)
			frame = append(frame, opCommitChunk)
			frame = append(frame, rest[:chunk]...)
			if err := writeFrame(cc.c, frame); err != nil {
				cc.c.Close()
				cerr = &OpError{Addr: c.addr, Op: opName(opCommitChunk), Err: err}
				stale = first
				break
			}
			first = false
			rest = rest[chunk:]
		}
		if cerr == nil {
			err, keep, st := c.roundTrip(ctx, cc, opCommit, rest, func([]byte) error { return nil })
			if keep {
				c.put(cc)
			} else {
				cc.c.Close()
			}
			cerr = err
			stale = st && first
		}
		if stale && pooled && attempt == 0 {
			c.flushIdle()
			continue
		}
		if cerr != nil {
			c.rpcErrs.Add(1)
		}
		return cerr
	}
}

// NumShards reports the single remote store behind this client.
func (c *Client) NumShards() int { return 1 }

// SetCacheBudget resizes the remote postings cache (fire-and-forget
// semantics are not acceptable here: errors surface).
func (c *Client) SetCacheBudget(bytes int64) {
	var w wbuf
	w.i64(bytes)
	c.call(context.Background(), opSetCacheBudget, w.b)
}

// Sync flushes and fsyncs the remote store's WAL (no-op for memory-backed
// servers). The engine calls it through the sharded backend after batch
// ingests.
func (c *Client) Sync() error {
	_, err := c.call(context.Background(), opSync, nil)
	return err
}

// status returns the server's observability snapshot, cached for StatusTTL
// so metrics scrapes do not hammer the server; on RPC failure the last
// snapshot is served (zero values before the first success).
func (c *Client) status() statusSnapshot {
	c.stMu.Lock()
	defer c.stMu.Unlock()
	if time.Since(c.stAt) < c.opts.StatusTTL {
		return c.st
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	resp, err := c.call(ctx, opStatus, nil)
	if err != nil {
		return c.st
	}
	r := &rbuf{b: resp}
	var st statusSnapshot
	st.cache.Hits = r.i64()
	st.cache.Misses = r.i64()
	st.cache.Evictions = r.i64()
	st.cache.Entries = r.i64()
	st.cache.Bytes = r.i64()
	st.seg.Segments = int(r.i64())
	st.seg.Rows = r.i64()
	st.seg.Entries = r.i64()
	st.seg.Bytes = r.i64()
	st.seg.Freezes = r.i64()
	st.rec.SnapshotRecords = r.i64()
	st.rec.WALReplayed = r.i64()
	st.rec.TornTailBytes = r.i64()
	st.rec.StaleWALBytes = r.i64()
	st.rec.DroppedRegions = r.i64()
	st.rec.DroppedBytes = r.i64()
	st.rec.UncommittedBatchBytes = r.i64()
	st.rec.Salvaged = r.bool1()
	st.readRows = r.i64()
	if r.done() != nil {
		return c.st
	}
	c.st, c.stAt = st, time.Now()
	return st
}

// CacheStats reports the remote postings cache counters (cached snapshot).
func (c *Client) CacheStats() storage.CacheStats { return c.status().cache }

// SegmentStats reports the remote immutable-tier shape (cached snapshot).
func (c *Client) SegmentStats() storage.SegmentStats { return c.status().seg }

// Recovery reports what the remote store's crash recovery found.
func (c *Client) Recovery() kvstore.RecoveryStats { return c.status().rec }

// ReadRows counts rows this client decoded from responses — the local
// observer of remote read traffic. (The server's own row counter is in the
// status snapshot; per-query row deltas must be cheap and RPC-free, so the
// client-side counter feeds ReadRows.)
func (c *Client) ReadRows() int64 { return c.rows.Load() }

// Reconnects counts dials after the client's first connection.
func (c *Client) Reconnects() int64 { return c.reconnects.Load() }

// Inflight reports RPCs currently in flight.
func (c *Client) Inflight() int64 { return c.inflight.Load() }

// SetMetrics registers the per-shard-server RPC series:
// seqlog_netshard_rpc_seconds{shard,op}, inflight, reconnects and error
// counters.
func (c *Client) SetMetrics(reg *metrics.Registry) {
	l := metrics.Label{Key: "shard", Value: fmt.Sprintf("%d", c.opts.Shard)}
	for op := byte(1); op < opMax; op++ {
		c.hists[op] = reg.Histogram("seqlog_netshard_rpc_seconds",
			l, metrics.Label{Key: "op", Value: opName(op)})
	}
	reg.GaugeFunc("seqlog_netshard_inflight", c.inflight.Load, l)
	reg.CounterFunc("seqlog_netshard_reconnects_total", c.reconnects.Load, l)
	reg.CounterFunc("seqlog_netshard_rpc_errors_total", c.rpcErrs.Load, l)
}
