package ingest

import (
	"sort"

	"seqlog/internal/model"
	"seqlog/internal/pairs"
	"seqlog/internal/storage"
)

// shardDelta is the table delta one shard contributes to a flush cycle:
// normalized new events per trace, new index entries and watermarks per
// pair, and count increments per leading/trailing activity. Shapes mirror
// the Builder's accumulators so the committed rows are encoded identically.
type shardDelta struct {
	traces  []model.TraceID // first-appearance order, for determinism
	seqs    map[model.TraceID][]model.TraceEvent
	entries map[model.PairKey][]storage.IndexEntry
	last    map[model.PairKey]map[model.TraceID]model.Timestamp
	counts  map[model.ActivityID]map[model.ActivityID]*storage.CountEntry
	rcounts map[model.ActivityID]map[model.ActivityID]*storage.CountEntry
}

func newShardDelta() *shardDelta {
	return &shardDelta{
		seqs:    make(map[model.TraceID][]model.TraceEvent),
		entries: make(map[model.PairKey][]storage.IndexEntry),
		last:    make(map[model.PairKey]map[model.TraceID]model.Timestamp),
		counts:  make(map[model.ActivityID]map[model.ActivityID]*storage.CountEntry),
		rcounts: make(map[model.ActivityID]map[model.ActivityID]*storage.CountEntry),
	}
}

func (d *shardDelta) bumpCount(m map[model.ActivityID]map[model.ActivityID]*storage.CountEntry,
	key, other model.ActivityID, dur int64) {
	row := m[key]
	if row == nil {
		row = make(map[model.ActivityID]*storage.CountEntry)
		m[key] = row
	}
	e := row[other]
	if e == nil {
		e = &storage.CountEntry{Other: other}
		row[other] = e
	}
	e.SumDuration += dur
	e.Completions++
}

// add folds one trace's flush result into the delta.
func (d *shardDelta) add(id model.TraceID, evs []model.TraceEvent, occs []pairs.PairOccurrence) {
	if _, seen := d.seqs[id]; !seen {
		d.traces = append(d.traces, id)
	}
	d.seqs[id] = append(d.seqs[id], evs...)
	for _, po := range occs {
		k, o := po.Key, po.Occ
		d.entries[k] = append(d.entries[k], storage.IndexEntry{Trace: id, TsA: o.TsA, TsB: o.TsB})
		lw := d.last[k]
		if lw == nil {
			lw = make(map[model.TraceID]model.Timestamp)
			d.last[k] = lw
		}
		lw[id] = o.TsB // occurrences arrive in completion order
		dur := int64(o.TsB - o.TsA)
		d.bumpCount(d.counts, k.First(), k.Second(), dur)
		d.bumpCount(d.rcounts, k.Second(), k.First(), dur)
	}
}

// extractShard runs one shard's part of a flush cycle: group the inbox by
// trace (arrival order preserved — the inbox is per-shard FIFO), feed each
// trace's resident session, and collect the delta. Only the flusher calls
// this, so sessions need no locking.
func (p *Pipeline) extractShard(sh *ingestShard, inbox []model.Event) (*shardDelta, error) {
	byTrace := make(map[model.TraceID][]model.Event)
	var order []model.TraceID
	for _, ev := range inbox {
		if _, ok := byTrace[ev.Trace]; !ok {
			order = append(order, ev.Trace)
		}
		byTrace[ev.Trace] = append(byTrace[ev.Trace], ev)
	}
	d := newShardDelta()
	for _, id := range order {
		if err := p.abortedErr(); err != nil {
			return nil, err
		}
		sess := sh.sessions[id]
		if sess == nil {
			var err error
			if sess, err = loadSession(p.tables, id, p.opts.Policy); err != nil {
				return nil, err
			}
			sh.sessions[id] = sess
		}
		evs, occs := sess.addBatch(byTrace[id])
		d.add(id, evs, occs)
	}
	return d, nil
}

// mergeDeltas folds the per-shard deltas into one. Traces are disjoint
// across shards (affinity sharding), so Seq rows concatenate; pair and
// count rows may collide and are merged.
func mergeDeltas(deltas []*shardDelta) *shardDelta {
	out := newShardDelta()
	for _, d := range deltas {
		if d == nil {
			continue
		}
		for _, id := range d.traces {
			if _, seen := out.seqs[id]; !seen {
				out.traces = append(out.traces, id)
			}
			out.seqs[id] = append(out.seqs[id], d.seqs[id]...)
		}
		for k, es := range d.entries {
			out.entries[k] = append(out.entries[k], es...)
		}
		for k, lw := range d.last {
			olw := out.last[k]
			if olw == nil {
				out.last[k] = lw
				continue
			}
			for id, ts := range lw {
				if ts > olw[id] {
					olw[id] = ts
				}
			}
		}
		for a, row := range d.counts {
			for b, e := range row {
				out.bumpCountBy(out.counts, a, b, e)
			}
		}
		for a, row := range d.rcounts {
			for b, e := range row {
				out.bumpCountBy(out.rcounts, a, b, e)
			}
		}
	}
	return out
}

func (d *shardDelta) bumpCountBy(m map[model.ActivityID]map[model.ActivityID]*storage.CountEntry,
	key model.ActivityID, other model.ActivityID, by *storage.CountEntry) {
	row := m[key]
	if row == nil {
		row = make(map[model.ActivityID]*storage.CountEntry)
		m[key] = row
	}
	e := row[other]
	if e == nil {
		e = &storage.CountEntry{Other: other}
		row[other] = e
	}
	e.SumDuration += by.SumDuration
	e.Completions += by.Completions
}

// commit writes one merged delta through the tables as a single atomic
// group: BeginBatch … CommitBatch on stores with a WAL (one fsync for the
// whole flush — the group commit), a plain write sequence followed by the
// optional Sync hook otherwise. Iteration orders are sorted so committed
// rows are reproducible run to run.
func (p *Pipeline) commit(d *shardDelta) (err error) {
	if len(d.seqs) == 0 {
		return nil
	}
	if p.opts.CommitLock != nil {
		p.opts.CommitLock.Lock()
		defer p.opts.CommitLock.Unlock()
	}
	if p.batch != nil {
		if err := p.batch.BeginBatch(); err != nil {
			return err
		}
		defer func() {
			if err != nil {
				p.batch.AbortBatch(err)
				return
			}
			err = p.batch.CommitBatch()
			if err == nil {
				p.countSync()
			}
		}()
	}

	sort.Slice(d.traces, func(i, j int) bool { return d.traces[i] < d.traces[j] })
	for _, id := range d.traces {
		// Abort poll between writes: returning the cause here unwinds into
		// the AbortBatch defer above, so the whole group rolls back.
		if err = p.abortedErr(); err != nil {
			return err
		}
		if err = p.tables.AppendSeq(id, d.seqs[id]); err != nil {
			return err
		}
	}

	keys := make([]model.PairKey, 0, len(d.entries))
	for k := range d.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if err = p.abortedErr(); err != nil {
			return err
		}
		es := d.entries[k]
		// Within a cycle a pair's entries come from many traces; keep a
		// canonical order inside the appended chunk.
		sort.Slice(es, func(i, j int) bool {
			if es[i].Trace != es[j].Trace {
				return es[i].Trace < es[j].Trace
			}
			return es[i].TsB < es[j].TsB
		})
		if err = p.tables.AppendIndex(p.opts.Period, k, es); err != nil {
			return err
		}
		if err = p.tables.MergeLastChecked(k, d.last[k]); err != nil {
			return err
		}
	}

	if err = p.mergeCountTable(d.counts, p.tables.MergeCounts); err != nil {
		return err
	}
	if err = p.mergeCountTable(d.rcounts, p.tables.MergeReverseCounts); err != nil {
		return err
	}

	if p.opts.BeforeCommit != nil {
		if err = p.opts.BeforeCommit(); err != nil {
			return err
		}
	}
	if p.batch == nil && p.opts.Sync != nil {
		if err = p.opts.Sync(); err != nil {
			return err
		}
		p.countSync()
	}
	return nil
}

func (p *Pipeline) mergeCountTable(m map[model.ActivityID]map[model.ActivityID]*storage.CountEntry,
	merge func(model.ActivityID, []storage.CountEntry) error) error {
	acts := make([]model.ActivityID, 0, len(m))
	for a := range m {
		acts = append(acts, a)
	}
	sort.Slice(acts, func(i, j int) bool { return acts[i] < acts[j] })
	for _, a := range acts {
		if err := p.abortedErr(); err != nil {
			return err
		}
		row := m[a]
		delta := make([]storage.CountEntry, 0, len(row))
		for _, e := range row {
			delta = append(delta, *e)
		}
		sort.Slice(delta, func(i, j int) bool { return delta[i].Other < delta[j].Other })
		if err := merge(a, delta); err != nil {
			return err
		}
	}
	return nil
}

func (p *Pipeline) countSync() {
	p.mu.Lock()
	p.stats.Syncs++
	p.mu.Unlock()
}
