package ingest

import (
	"sort"

	"seqlog/internal/kvstore"
	"seqlog/internal/model"
	"seqlog/internal/pairs"
	"seqlog/internal/parallel"
	"seqlog/internal/storage"
)

// shardDelta is the table delta one shard contributes to a flush cycle:
// normalized new events per trace, new index entries and watermarks per
// pair, and count increments per leading/trailing activity. Shapes mirror
// the Builder's accumulators so the committed rows are encoded identically.
// The same shape doubles as the per-STORE partition the reducer produces.
type shardDelta struct {
	traces  []model.TraceID // first-appearance order, for determinism
	seqs    map[model.TraceID][]model.TraceEvent
	entries map[model.PairKey][]storage.IndexEntry
	last    map[model.PairKey]map[model.TraceID]model.Timestamp
	counts  map[model.ActivityID]map[model.ActivityID]*storage.CountEntry
	rcounts map[model.ActivityID]map[model.ActivityID]*storage.CountEntry
}

func newShardDelta() *shardDelta {
	return &shardDelta{
		seqs:    make(map[model.TraceID][]model.TraceEvent),
		entries: make(map[model.PairKey][]storage.IndexEntry),
		last:    make(map[model.PairKey]map[model.TraceID]model.Timestamp),
		counts:  make(map[model.ActivityID]map[model.ActivityID]*storage.CountEntry),
		rcounts: make(map[model.ActivityID]map[model.ActivityID]*storage.CountEntry),
	}
}

func (d *shardDelta) empty() bool {
	return len(d.seqs) == 0 && len(d.entries) == 0 &&
		len(d.counts) == 0 && len(d.rcounts) == 0
}

func (d *shardDelta) bumpCount(m map[model.ActivityID]map[model.ActivityID]*storage.CountEntry,
	key, other model.ActivityID, dur int64) {
	row := m[key]
	if row == nil {
		row = make(map[model.ActivityID]*storage.CountEntry)
		m[key] = row
	}
	e := row[other]
	if e == nil {
		e = &storage.CountEntry{Other: other}
		row[other] = e
	}
	e.SumDuration += dur
	e.Completions++
}

// add folds one trace's flush result into the delta.
func (d *shardDelta) add(id model.TraceID, evs []model.TraceEvent, occs []pairs.PairOccurrence) {
	if _, seen := d.seqs[id]; !seen {
		d.traces = append(d.traces, id)
	}
	d.seqs[id] = append(d.seqs[id], evs...)
	for _, po := range occs {
		k, o := po.Key, po.Occ
		d.entries[k] = append(d.entries[k], storage.IndexEntry{Trace: id, TsA: o.TsA, TsB: o.TsB})
		lw := d.last[k]
		if lw == nil {
			lw = make(map[model.TraceID]model.Timestamp)
			d.last[k] = lw
		}
		lw[id] = o.TsB // occurrences arrive in completion order
		dur := int64(o.TsB - o.TsA)
		d.bumpCount(d.counts, k.First(), k.Second(), dur)
		d.bumpCount(d.rcounts, k.Second(), k.First(), dur)
	}
}

// extractShard runs one shard's part of a flush cycle: group the inbox by
// trace (arrival order preserved — the inbox is per-shard FIFO), feed each
// trace's resident session, and collect the delta. Only the coordinator's
// extraction pass calls this (under cycleMu), so sessions need no locking.
func (p *Pipeline) extractShard(sh *ingestShard, inbox []model.Event) (*shardDelta, error) {
	byTrace := make(map[model.TraceID][]model.Event)
	var order []model.TraceID
	for _, ev := range inbox {
		if _, ok := byTrace[ev.Trace]; !ok {
			order = append(order, ev.Trace)
		}
		byTrace[ev.Trace] = append(byTrace[ev.Trace], ev)
	}
	d := newShardDelta()
	for _, id := range order {
		if err := p.abortedErr(); err != nil {
			return nil, err
		}
		sess := sh.sessions[id]
		if sess == nil {
			var err error
			if sess, err = loadSession(p.tables, id, p.opts.Policy); err != nil {
				return nil, err
			}
			sh.sessions[id] = sess
		}
		evs, occs := sess.addBatch(byTrace[id])
		d.add(id, evs, occs)
	}
	return d, nil
}

// mergeDeltas folds the per-shard deltas into one. Traces are disjoint
// across shards (affinity sharding), so Seq rows concatenate; pair and
// count rows may collide and are merged.
func mergeDeltas(deltas []*shardDelta) *shardDelta {
	out := newShardDelta()
	for _, d := range deltas {
		if d == nil {
			continue
		}
		for _, id := range d.traces {
			if _, seen := out.seqs[id]; !seen {
				out.traces = append(out.traces, id)
			}
			out.seqs[id] = append(out.seqs[id], d.seqs[id]...)
		}
		for k, es := range d.entries {
			out.entries[k] = append(out.entries[k], es...)
		}
		for k, lw := range d.last {
			olw := out.last[k]
			if olw == nil {
				out.last[k] = lw
				continue
			}
			for id, ts := range lw {
				if ts > olw[id] {
					olw[id] = ts
				}
			}
		}
		for a, row := range d.counts {
			for b, e := range row {
				out.bumpCountBy(out.counts, a, b, e)
			}
		}
		for a, row := range d.rcounts {
			for b, e := range row {
				out.bumpCountBy(out.rcounts, a, b, e)
			}
		}
	}
	return out
}

func (d *shardDelta) bumpCountBy(m map[model.ActivityID]map[model.ActivityID]*storage.CountEntry,
	key model.ActivityID, other model.ActivityID, by *storage.CountEntry) {
	row := m[key]
	if row == nil {
		row = make(map[model.ActivityID]*storage.CountEntry)
		m[key] = row
	}
	e := row[other]
	if e == nil {
		e = &storage.CountEntry{Other: other}
		row[other] = e
	}
	e.SumDuration += by.SumDuration
	e.Completions += by.Completions
}

// partitionDeltas is the cross-shard reducer: it re-keys the per-AFFINITY
// deltas into per-STORE partitions, using the backend's own routing so every
// row of partition i is guaranteed to land inside store i's open WAL group
// when written through the ordinary Backend methods. With a single store it
// degenerates to the old full merge. The outer loop runs in affinity-delta
// order, so per-pair appends stay deterministic (and the commit re-sorts
// entries within the cycle anyway).
func (p *Pipeline) partitionDeltas(deltas []*shardDelta) []*shardDelta {
	if len(p.stores) == 1 {
		return []*shardDelta{mergeDeltas(deltas)}
	}
	parts := make([]*shardDelta, len(p.stores))
	part := func(i int) *shardDelta {
		if parts[i] == nil {
			parts[i] = newShardDelta()
		}
		return parts[i]
	}
	for _, d := range deltas {
		if d == nil {
			continue
		}
		for _, id := range d.traces {
			t := part(p.route.ShardForTrace(id))
			if _, seen := t.seqs[id]; !seen {
				t.traces = append(t.traces, id)
			}
			t.seqs[id] = append(t.seqs[id], d.seqs[id]...)
		}
		for k, es := range d.entries {
			t := part(p.route.ShardForPair(k))
			t.entries[k] = append(t.entries[k], es...)
		}
		for k, lw := range d.last {
			t := part(p.route.ShardForPair(k))
			olw := t.last[k]
			if olw == nil {
				olw = make(map[model.TraceID]model.Timestamp, len(lw))
				t.last[k] = olw
			}
			for id, ts := range lw {
				if ts > olw[id] {
					olw[id] = ts
				}
			}
		}
		// Count partials route where their underlying pair routes: a counts
		// row keyed (first=a, other=b) belongs to pair (a,b); an rcounts row
		// keyed (second=a, other=b) belongs to pair (b,a). This mirrors the
		// sharded backend's own MergeCounts / MergeReverseCounts splitting,
		// so the partition is exactly the rows store i would keep.
		for a, row := range d.counts {
			for b, e := range row {
				t := part(p.route.ShardForPair(model.NewPairKey(a, b)))
				t.bumpCountBy(t.counts, a, b, e)
			}
		}
		for a, row := range d.rcounts {
			for b, e := range row {
				t := part(p.route.ShardForPair(model.NewPairKey(b, a)))
				t.bumpCountBy(t.rcounts, a, b, e)
			}
		}
	}
	return parts
}

// commitJob writes one cycle's per-store partitions through the tables, one
// crash-atomic WAL group per touched store, written in parallel and sealed
// without waiting for fsync (the durability handles travel on the job to the
// acker). Atomicity is per store, exactly as it was for the fan-out group
// writer: a crash between two stores' seals leaves individually-consistent
// stores that may disagree about the flush, and watermark dedup makes the
// replay idempotent. One cross-store ordering is enforced: when the
// BeforeCommit hook reports alphabet growth, store 0's group (which carries
// the meta row) is sealed and made durable before any other store's group
// seals, so recovery can never see data rows whose activities the durable
// alphabet doesn't know.
func (p *Pipeline) commitJob(job *flushJob) error {
	if p.opts.CommitLock != nil {
		p.opts.CommitLock.Lock()
		defer p.opts.CommitLock.Unlock()
	}

	open := make([]bool, len(p.stores))
	abortOpen := func(cause error) {
		for i, b := range open {
			if b {
				p.stores[i].batch.AbortBatch(cause)
				open[i] = false
			}
		}
	}
	hasBatch := false
	for i := range p.stores {
		needs := job.parts[i] != nil && !job.parts[i].empty()
		if i == 0 && p.opts.BeforeCommit != nil {
			// The hook may write the meta row even when store 0 got no data
			// this cycle; its group must be open to keep that write atomic.
			needs = true
		}
		if !needs || p.stores[i].batch == nil {
			continue
		}
		if err := p.stores[i].batch.BeginBatch(); err != nil {
			abortOpen(err)
			return err
		}
		open[i] = true
		hasBatch = true
	}

	// Table writes for all touched stores run concurrently: each partition's
	// rows route to exactly one store, so the writers never contend on a
	// store's batch state.
	writers := 0
	for i := range p.stores {
		if job.parts[i] != nil && !job.parts[i].empty() {
			writers++
		}
	}
	if writers > 0 {
		err := parallel.ForEach(len(p.stores), writers, func(i int) error {
			d := job.parts[i]
			if d == nil || d.empty() {
				return nil
			}
			return p.writeDelta(d)
		})
		if err != nil {
			abortOpen(err)
			return err
		}
	}

	metaGrew := false
	if p.opts.BeforeCommit != nil {
		grew, err := p.opts.BeforeCommit()
		if err != nil {
			abortOpen(err)
			return err
		}
		metaGrew = grew
	}

	job.waits = make([]kvstore.Durability, len(p.stores))
	seal := func(i int) error {
		open[i] = false
		if gc, ok := p.stores[i].batch.(kvstore.GroupCommitter); ok {
			d, err := gc.SealBatch()
			if err != nil {
				return err
			}
			job.waits[i] = d
		} else if err := p.stores[i].batch.CommitBatch(); err != nil {
			return err
		}
		p.stores[i].flushes.Add(1)
		return nil
	}

	if metaGrew && open[0] && len(p.stores) > 1 {
		// Alphabet grew: store 0 must be durable before any other store's
		// group seals (see the function comment).
		if err := seal(0); err != nil {
			abortOpen(err)
			return err
		}
		if job.waits[0] != nil {
			if err := job.waits[0].Wait(); err != nil {
				abortOpen(err)
				return err
			}
			job.waits[0] = nil
		}
	}

	// Seal the remaining open groups. Keep-going on error: a store that
	// fails to seal must not throw away the sealed work of the others, so
	// every store gets its seal attempt and the first error poisons the
	// pipeline afterwards.
	var first error
	for i := range p.stores {
		if !open[i] {
			continue
		}
		if err := seal(i); err != nil && first == nil {
			first = err
		}
	}
	if first != nil {
		return first
	}

	if hasBatch {
		job.syncs = 1
	} else if p.opts.Sync != nil {
		if err := p.opts.Sync(); err != nil {
			return err
		}
		job.syncs = 1
	}
	return nil
}

// writeDelta streams one store partition through the tables in sorted,
// reproducible order. The caller has already opened the target store's WAL
// group (when it has one); routing determinism guarantees every write here
// lands inside it.
func (p *Pipeline) writeDelta(d *shardDelta) (err error) {
	sort.Slice(d.traces, func(i, j int) bool { return d.traces[i] < d.traces[j] })
	for _, id := range d.traces {
		// Abort poll between writes: returning the cause here unwinds into
		// the caller's AbortBatch path, so the whole group rolls back.
		if err = p.abortedErr(); err != nil {
			return err
		}
		if err = p.tables.AppendSeq(id, d.seqs[id]); err != nil {
			return err
		}
	}

	keys := make([]model.PairKey, 0, len(d.entries))
	for k := range d.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if err = p.abortedErr(); err != nil {
			return err
		}
		es := d.entries[k]
		// Within a cycle a pair's entries come from many traces; keep a
		// canonical order inside the appended chunk.
		sort.Slice(es, func(i, j int) bool {
			if es[i].Trace != es[j].Trace {
				return es[i].Trace < es[j].Trace
			}
			return es[i].TsB < es[j].TsB
		})
		if err = p.tables.AppendIndex(p.opts.Period, k, es); err != nil {
			return err
		}
		if err = p.tables.MergeLastChecked(k, d.last[k]); err != nil {
			return err
		}
	}

	if err = p.mergeCountTable(d.counts, p.tables.MergeCounts); err != nil {
		return err
	}
	if err = p.mergeCountTable(d.rcounts, p.tables.MergeReverseCounts); err != nil {
		return err
	}
	return nil
}

func (p *Pipeline) mergeCountTable(m map[model.ActivityID]map[model.ActivityID]*storage.CountEntry,
	merge func(model.ActivityID, []storage.CountEntry) error) error {
	acts := make([]model.ActivityID, 0, len(m))
	for a := range m {
		acts = append(acts, a)
	}
	sort.Slice(acts, func(i, j int) bool { return acts[i] < acts[j] })
	for _, a := range acts {
		if err := p.abortedErr(); err != nil {
			return err
		}
		row := m[a]
		delta := make([]storage.CountEntry, 0, len(row))
		for _, e := range row {
			delta = append(delta, *e)
		}
		sort.Slice(delta, func(i, j int) bool { return delta[i].Other < delta[j].Other })
		if err := merge(a, delta); err != nil {
			return err
		}
	}
	return nil
}
