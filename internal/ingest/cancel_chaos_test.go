package ingest

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"seqlog/internal/kvstore"
	"seqlog/internal/model"
	"seqlog/internal/query"
	"seqlog/internal/storage"
)

// TestCancellationBoundedUnderSlowDisk is the chaos harness of the
// cancellation work: every filesystem write crawls at 50ms/op (FaultFS
// OpDelay — an overloaded disk), a producer keeps the pipeline flushing
// through that crawl, and the test asserts the two bounds the design
// promises:
//
//   - a canceled query returns within a small multiple of the cooperative
//     check interval, not after the disk recovers — queries never wait on
//     the stalled write path;
//   - a FlushCtx whose deadline expires returns promptly with the context
//     error while the flusher keeps grinding behind it.
//
// Afterwards the goroutine count must settle back to the baseline: nobody
// keeps working for an abandoned caller.
func TestCancellationBoundedUnderSlowDisk(t *testing.T) {
	baseline := runtime.NumGoroutine()

	ffs := kvstore.NewFaultFS(nil)
	var slow atomic.Bool
	ffs.OpDelay = func(op, path string) time.Duration {
		if !slow.Load() {
			return 0
		}
		switch op {
		case "write", "sync", "syncdir":
			return 50 * time.Millisecond
		}
		return 0
	}
	ds, err := kvstore.OpenDiskWith(t.TempDir(), kvstore.DiskOptions{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	tb := storage.NewTables(ds)
	p, err := New(tb, Options{
		Policy:        model.STNM,
		Workers:       2,
		FlushEvents:   128,
		FlushInterval: time.Millisecond,
		Block:         true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Load a real index at full disk speed so queries have rows to walk.
	rng := rand.New(rand.NewSource(9))
	if err := p.Append(randomLog(rng, 16, 4000, 5)); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}

	// From here on the disk crawls, and a producer keeps flushes in flight.
	slow.Store(true)
	prodCtx, stopProd := context.WithCancel(context.Background())
	prng := rand.New(rand.NewSource(10))
	prodEvents := randomLog(prng, 16, 2000, 5)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for lo := 0; lo < len(prodEvents); lo += 64 {
			hi := lo + 64
			if hi > len(prodEvents) {
				hi = len(prodEvents)
			}
			if err := p.AppendCtx(prodCtx, prodEvents[lo:hi]); err != nil {
				return // teardown cancel; any earlier error shows up in Close
			}
		}
	}()

	// Canceled queries must return in small multiples of the check interval
	// (microseconds of join work), never after the 50ms/op disk.
	proc := query.NewProcessor(tb)
	pat := model.Pattern{0, 1, 2}
	const bound = time.Second
	for round := 0; round < 5; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		var qerr error
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				if _, err := proc.Detect(ctx, pat); err != nil {
					qerr = err
					return
				}
			}
		}()
		time.Sleep(2 * time.Millisecond)
		t0 := time.Now()
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("round %d: canceled query still running after 5s", round)
		}
		if d := time.Since(t0); d > bound {
			t.Errorf("round %d: cancel took %v, want < %v", round, d, bound)
		}
		if !errors.Is(qerr, context.Canceled) {
			t.Errorf("round %d: query error = %v, want context.Canceled", round, qerr)
		}
	}

	// A flush wait abandons promptly on deadline even though the flusher is
	// mid-crawl. (The flush itself keeps going: other producers may depend
	// on the commit.)
	if err := p.AppendCtx(prodCtx, randomLog(rng, 4, 64, 5)); err != nil {
		t.Fatal(err)
	}
	fctx, fcancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	t0 := time.Now()
	ferr := p.FlushCtx(fctx)
	fcancel()
	if d := time.Since(t0); d > time.Second {
		t.Errorf("FlushCtx returned after %v, want < 1s", d)
	}
	if ferr != nil && !errors.Is(ferr, context.DeadlineExceeded) {
		t.Errorf("FlushCtx error = %v, want nil or context.DeadlineExceeded", ferr)
	}

	stopProd()
	wg.Wait()
	slow.Store(false) // let the drain in Close run at full speed
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// No zombie workers: everything spawned for queries, flushes and the
	// pipeline itself must be gone once the pipeline is closed.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline {
		t.Errorf("goroutines leaked: %d running, baseline was %d", g, baseline)
	}
}
