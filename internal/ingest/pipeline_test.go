package ingest

import (
	"context"

	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"seqlog/internal/index"
	"seqlog/internal/kvstore"
	"seqlog/internal/model"
	"seqlog/internal/pairs"
	"seqlog/internal/storage"
)

// dumpTables renders the full semantic content of the index tables into a
// canonical string: Seq rows verbatim, Index entries sorted per pair (the
// append order of a posting list is nondeterministic even between two
// Builder runs), counts and watermarks for every indexed pair. Two stores
// are equivalent iff their dumps match. Accepting any Backend lets the
// sharded oracle tests compare a scatter-gathered view against the serial
// single-store build.
func dumpTables(t *testing.T, tb storage.Backend, period string) string {
	t.Helper()
	var lines []string

	err := tb.ScanSeq(context.Background(), func(id model.TraceID, evs []model.TraceEvent) error {
		lines = append(lines, fmt.Sprintf("seq %d %v", id, evs))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	acts := map[model.ActivityID]bool{}
	err = tb.ScanIndex(context.Background(), period, func(k model.PairKey, es []storage.IndexEntry) error {
		cp := append([]storage.IndexEntry(nil), es...)
		sort.Slice(cp, func(i, j int) bool {
			if cp[i].Trace != cp[j].Trace {
				return cp[i].Trace < cp[j].Trace
			}
			if cp[i].TsA != cp[j].TsA {
				return cp[i].TsA < cp[j].TsA
			}
			return cp[i].TsB < cp[j].TsB
		})
		lines = append(lines, fmt.Sprintf("idx %v %v", k, cp))
		lc, err := tb.GetLastChecked(context.Background(), k)
		if err != nil {
			return err
		}
		var lcs []string
		for id, ts := range lc {
			lcs = append(lcs, fmt.Sprintf("%d:%d", id, ts))
		}
		sort.Strings(lcs)
		lines = append(lines, fmt.Sprintf("lc %v %v", k, lcs))
		acts[k.First()] = true
		acts[k.Second()] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	for a := range acts {
		c, err := tb.GetCounts(context.Background(), a)
		if err != nil {
			t.Fatal(err)
		}
		rc, err := tb.GetReverseCounts(context.Background(), a)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, fmt.Sprintf("cnt %d %v", a, c), fmt.Sprintf("rcnt %d %v", a, rc))
	}

	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// randomLog emits a multi-trace event stream. Per-trace timestamps are
// nondecreasing (the stream regime of the equivalence contract) and include
// ties, so the normalization path is exercised.
func randomLog(rng *rand.Rand, traces, events, alphabet int) []model.Event {
	var out []model.Event
	ts := int64(1)
	for len(out) < events {
		if rng.Intn(3) != 0 {
			ts++ // ~1/3 of events tie with the previous timestamp
		}
		out = append(out, model.Event{
			Trace:    model.TraceID(1 + rng.Intn(traces)),
			Activity: model.ActivityID(rng.Intn(alphabet)),
			TS:       model.Timestamp(ts),
		})
	}
	return out
}

// serialDump indexes the whole log with one serial Builder.Update and
// returns the canonical dump — the oracle every streaming run must match.
func serialDump(t *testing.T, events []model.Event, policy model.Policy, period string) string {
	t.Helper()
	tb := storage.NewTables(kvstore.NewMemStore())
	b, err := index.NewBuilder(tb, index.Options{Policy: policy, Method: pairs.Indexing, Workers: 2, Period: period})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Update(events); err != nil {
		t.Fatal(err)
	}
	return dumpTables(t, tb, period)
}

// TestStreamEqualsSerialBuilder is the equivalence oracle of the tentpole:
// any chunking of the stream, any worker count, SC and STNM, tiny flush
// thresholds forcing many micro-batch cycles — the tables must come out
// equivalent to one serial batch update.
func TestStreamEqualsSerialBuilder(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, policy := range []model.Policy{model.SC, model.STNM} {
		for _, workers := range []int{1, 2, 4} {
			for iter := 0; iter < 4; iter++ {
				events := randomLog(rng, 1+rng.Intn(6), 150, 4)
				want := serialDump(t, events, policy, "")

				tb := storage.NewTables(kvstore.NewMemStore())
				p, err := New(tb, Options{
					Policy:        policy,
					Workers:       workers,
					FlushEvents:   8,
					FlushInterval: time.Millisecond,
					Block:         true,
				})
				if err != nil {
					t.Fatal(err)
				}
				for lo := 0; lo < len(events); {
					hi := lo + 1 + rng.Intn(12)
					if hi > len(events) {
						hi = len(events)
					}
					if err := p.Append(events[lo:hi]); err != nil {
						t.Fatal(err)
					}
					lo = hi
				}
				if err := p.Close(); err != nil {
					t.Fatal(err)
				}

				if got := dumpTables(t, tb, ""); got != want {
					t.Fatalf("policy=%v workers=%d iter=%d: streamed tables diverge from serial build\ngot:\n%s\nwant:\n%s",
						policy, workers, iter, got, want)
				}

				st := p.Stats()
				if st.Flushed != int64(len(events)) || st.Queued != 0 {
					t.Fatalf("stats after close: %+v, want %d flushed, 0 queued", st, len(events))
				}
			}
		}
	}
}

// TestConcurrentProducers partitions the traces across goroutines that
// append concurrently (each preserving its own traces' order). Run under
// -race this is the pipeline's concurrency proof.
func TestConcurrentProducers(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	const producers = 4
	events := randomLog(rng, producers*3, 600, 5)
	want := serialDump(t, events, model.STNM, "")

	// Partition by trace, preserving per-trace order.
	parts := make([][]model.Event, producers)
	for _, ev := range events {
		pi := int(ev.Trace) % producers
		parts[pi] = append(parts[pi], ev)
	}

	tb := storage.NewTables(kvstore.NewMemStore())
	p, err := New(tb, Options{
		Policy:        model.STNM,
		Workers:       4,
		FlushEvents:   16,
		FlushInterval: time.Millisecond,
		Block:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for pi := 0; pi < producers; pi++ {
		wg.Add(1)
		go func(evs []model.Event) {
			defer wg.Done()
			prng := rand.New(rand.NewSource(int64(len(evs))))
			for lo := 0; lo < len(evs); {
				hi := lo + 1 + prng.Intn(9)
				if hi > len(evs) {
					hi = len(evs)
				}
				if err := p.Append(evs[lo:hi]); err != nil {
					t.Error(err)
					return
				}
				lo = hi
			}
		}(parts[pi])
	}
	wg.Wait()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if got := dumpTables(t, tb, ""); got != want {
		t.Fatalf("concurrent producers diverge from serial build\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// lockedLocker hands the test a way to stall commits: while held, the
// flusher blocks inside its cycle and the queue fills up.
func TestBackpressureOverloaded(t *testing.T) {
	tb := storage.NewTables(kvstore.NewMemStore())
	var gate sync.Mutex
	p, err := New(tb, Options{
		Policy:        model.STNM,
		Workers:       1,
		FlushEvents:   4,
		QueueEvents:   8,
		FlushInterval: time.Hour, // only explicit kicks
		CommitLock:    &gate,
	})
	if err != nil {
		t.Fatal(err)
	}
	gate.Lock() // stall every commit

	ev := func(i int) model.Event {
		return model.Event{Trace: 1, Activity: model.ActivityID(i % 3), TS: model.Timestamp(i + 1)}
	}
	accepted := 0
	var lastErr error
	for i := 0; i < 100; i++ {
		if err := p.Append([]model.Event{ev(i)}); err != nil {
			lastErr = err
			break
		}
		accepted++
	}
	if !errors.Is(lastErr, ErrOverloaded) {
		t.Fatalf("overfilling the queue returned %v, want ErrOverloaded", lastErr)
	}
	if st := p.Stats(); st.Stalls == 0 {
		t.Fatalf("no stall recorded: %+v", st)
	}

	gate.Unlock() // release the flusher
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Flushed != int64(accepted) {
		t.Fatalf("flushed %d of %d accepted events", st.Flushed, accepted)
	}
	if got, want := dumpTables(t, tb, ""), serialDump(t, func() []model.Event {
		evs := make([]model.Event, accepted)
		for i := range evs {
			evs[i] = ev(i)
		}
		return evs
	}(), model.STNM, ""); got != want {
		t.Fatal("accepted prefix not indexed equivalently")
	}
}

// TestBlockingAppendWaits: in blocking mode a full queue parks the producer
// until the flusher frees credits, instead of erroring. An oversize batch
// (larger than the whole queue) is admitted in one piece by overdrawing a
// fully-free pool — all-or-nothing admission — so the backpressure lands on
// the NEXT append, which must park until the stalled commit releases the
// overdrawn credits.
func TestBlockingAppendWaits(t *testing.T) {
	tb := storage.NewTables(kvstore.NewMemStore())
	var gate sync.Mutex
	p, err := New(tb, Options{
		Policy:        model.STNM,
		Workers:       1,
		FlushEvents:   4,
		QueueEvents:   8,
		FlushInterval: time.Millisecond,
		Block:         true,
		CommitLock:    &gate,
	})
	if err != nil {
		t.Fatal(err)
	}
	gate.Lock()
	evs := make([]model.Event, 40) // 5× the queue: oversize, overdraws whole
	for i := range evs {
		evs[i] = model.Event{Trace: 1, Activity: 0, TS: model.Timestamp(i + 1)}
	}
	if err := p.Append(evs); err != nil {
		t.Fatalf("oversize append onto a free pool: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		done <- p.Append([]model.Event{{Trace: 2, Activity: 0, TS: 1}})
	}()
	select {
	case err := <-done:
		t.Fatalf("append finished while commits were stalled: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	gate.Unlock()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Flushed != 41 || st.Stalls == 0 {
		t.Fatalf("stats %+v, want 41 flushed and >0 stalls", st)
	}
}

func TestAppendAfterClose(t *testing.T) {
	tb := storage.NewTables(kvstore.NewMemStore())
	p, err := New(tb, Options{Policy: model.STNM})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	err = p.Append([]model.Event{{Trace: 1, Activity: 0, TS: 1}})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	if err := p.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestRejectsBadPolicy(t *testing.T) {
	tb := storage.NewTables(kvstore.NewMemStore())
	if _, err := New(tb, Options{Policy: model.STAM}); err == nil {
		t.Fatal("STAM accepted")
	}
}

// TestStreamOnTopOfBatchPrefix: traces already indexed by the serial
// Builder continue over the stream — the session must resume from the
// stored prefix (boundary, extractor state, SC last event).
func TestStreamOnTopOfBatchPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for _, policy := range []model.Policy{model.SC, model.STNM} {
		events := randomLog(rng, 4, 120, 4)
		cut := len(events) / 2
		want := serialDump(t, events, policy, "")

		tb := storage.NewTables(kvstore.NewMemStore())
		b, err := index.NewBuilder(tb, index.Options{Policy: policy, Method: pairs.State, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.Update(events[:cut]); err != nil {
			t.Fatal(err)
		}

		p, err := New(tb, Options{Policy: policy, Workers: 2, FlushEvents: 8, FlushInterval: time.Millisecond, Block: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Append(events[cut:]); err != nil {
			t.Fatal(err)
		}
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
		if got := dumpTables(t, tb, ""); got != want {
			t.Fatalf("policy=%v: stream atop batch prefix diverges\ngot:\n%s\nwant:\n%s", policy, got, want)
		}
	}
}

// TestForgetDropsSessions: pruned traces release their resident state.
func TestForgetDropsSessions(t *testing.T) {
	tb := storage.NewTables(kvstore.NewMemStore())
	p, err := New(tb, Options{Policy: model.STNM, Workers: 2, FlushEvents: 4, Block: true})
	if err != nil {
		t.Fatal(err)
	}
	var evs []model.Event
	for i := 0; i < 20; i++ {
		evs = append(evs, model.Event{Trace: model.TraceID(1 + i%4), Activity: model.ActivityID(i % 3), TS: model.Timestamp(i + 1)})
	}
	if err := p.Append(evs); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Sessions != 4 {
		t.Fatalf("sessions = %d, want 4", st.Sessions)
	}
	p.Forget([]model.TraceID{1, 2, 3, 4})
	total := 0
	for i := range p.shards {
		total += len(p.shards[i].sessions)
	}
	if total != 0 {
		t.Fatalf("%d sessions survive Forget", total)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
