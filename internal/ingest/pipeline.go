// Package ingest is the streaming write path of the reproduction: a
// concurrent pipeline that accepts events continuously and maintains the
// pair index incrementally, the regime §4.2 of the paper argues the State
// method (Algorithm 8) exists for.
//
// Architecture (see DESIGN.md "Ingestion pipeline"):
//
//   - Append shards incoming events by trace id onto N affinity shards.
//     A trace always lands on the same shard, so per-trace arrival order —
//     the only order the index semantics need — survives sharding.
//   - Each shard keeps resident extraction sessions: one StateExtractor
//     (or last-event cell under SC) per live trace, fed across micro-batches
//     instead of re-deriving pairs from the stored prefix every flush the
//     way the batch Builder must.
//   - The coordinator goroutine swaps the shard inboxes when a flush
//     trigger fires (size or age), extracts deltas on all shards in
//     parallel, and partitions them per independent STORE of the backend
//     (the cross-shard reducer). The committer goroutine writes each store's
//     partition concurrently — one flusher and one WAL group per store —
//     and seals the groups without waiting for their fsyncs; the acker
//     releases credits only once every store reports its group durable.
//     Extraction of cycle N+1 therefore proceeds while cycle N is inside
//     fsync (double buffering), and consecutive groups on one store share
//     fsyncs (kvstore's leader/follower coalescing). An acknowledged flush
//     still means "fsynced on every store it touched", matching the serial
//     path.
//   - A bounded credit pool applies backpressure: Append either blocks or
//     fails fast with ErrOverloaded when the queue is full. Admission is
//     all-or-nothing per batch — a batch larger than the queue reserves the
//     whole pool and overdraws it rather than being admitted in chunks.
//
// Equivalence contract, enforced by the oracle tests: when each trace's
// events are appended in timestamp order (any interleaving across traces,
// any chunking), the resulting tables are equivalent to a single serial
// index.Builder.Update of the whole log — identical Seq, Count,
// ReverseCount and LastChecked rows, and an Index holding exactly the same
// entries (append order within a posting list may differ, as it already
// does between two Builder runs).
package ingest

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"seqlog/internal/kvstore"
	"seqlog/internal/metrics"
	"seqlog/internal/model"
	"seqlog/internal/parallel"
	"seqlog/internal/storage"
)

// ErrOverloaded is returned by non-blocking Append when the input queue
// cannot take the batch. The caller should retry later; nothing of the
// batch was enqueued (all-or-nothing admission).
var ErrOverloaded = errors.New("ingest: pipeline overloaded, retry later")

// ErrClosed is returned by operations on a closed pipeline.
var ErrClosed = errors.New("ingest: pipeline is closed")

// Options configures a Pipeline.
type Options struct {
	// Policy is SC or STNM (STAM is not indexable, and the positional
	// partial-order extractor is batch-only — both are rejected).
	Policy model.Policy

	// Period is the index partition new entries are appended to.
	Period string

	// Workers is the shard / extraction-parallelism count.
	// Defaults to GOMAXPROCS.
	Workers int

	// FlushEvents triggers a flush once at least this many events are
	// buffered. Default 1024.
	FlushEvents int

	// FlushInterval bounds how long a buffered event waits before being
	// flushed. Default 50ms.
	FlushInterval time.Duration

	// QueueEvents bounds the input queue. Admission beyond it blocks or
	// fails with ErrOverloaded. Raised to 2×FlushEvents if smaller, so
	// backpressure can never deadlock the flush trigger. Default
	// 4×FlushEvents.
	QueueEvents int

	// MaxInflight caps how many flush cycles may be past extraction at
	// once: with 1 every commit runs to durability before the next cycle's
	// handoff (the pre-pipelining behavior); with 2 (the default) the
	// coordinator extracts and the committer writes cycle N+1 while cycle
	// N's groups are inside fsync. Higher values deepen the fsync-
	// coalescing window at the cost of more unacked cycles in flight.
	MaxInflight int

	// Block selects the backpressure style of Append: true blocks the
	// caller until the queue drains, false fails fast with ErrOverloaded.
	Block bool

	// CommitLock, when set, is held around every table commit, so an
	// embedding engine can serialize flushes against its readers.
	CommitLock sync.Locker

	// BeforeCommit, when set, runs inside the commit (under CommitLock and
	// inside every open batch group, before the groups seal). The engine
	// uses it to persist alphabet growth in the same crash-atomic unit as
	// the events that introduced the new activities; it reports whether it
	// wrote, because growth forces store 0's group durable before any other
	// store's group may seal (the meta-freshness recovery invariant).
	BeforeCommit func() (bool, error)

	// Sync, when set, is called after a commit on stores that do not
	// implement kvstore.BatchWriter (group commit subsumes it otherwise).
	Sync func() error

	// Metrics, when set, receives the pipeline telemetry: the
	// seqlog_ingest_flush_seconds histogram observing each committed flush
	// cycle (swap + extract + commit + fsync), the
	// seqlog_ingest_commit_wait_seconds histogram observing how long
	// extraction blocked handing a cycle to the committer (zero when the
	// write path keeps up — the "extraction stalled behind fsync" signal),
	// and per-store seqlog_ingest_shard_commit_seconds /
	// seqlog_ingest_shard_flushes_total series. The counters of Stats are
	// exposed by the embedding engine instead, so they stay monotone across
	// pipeline restarts.
	Metrics *metrics.Registry
}

// Stats is a snapshot of the pipeline counters.
type Stats struct {
	Queued   int64 `json:"queued"`             // events buffered right now
	Accepted int64 `json:"accepted"`           // events admitted in total
	Flushed  int64 `json:"flushed"`            // events committed to tables
	Batches  int64 `json:"batches"`            // committed flush cycles
	Syncs    int64 `json:"syncs"`              // durably committed cycles
	Stalls   int64 `json:"stalls"`             // Appends that blocked or were refused
	Sessions int64 `json:"sessions,omitempty"` // resident trace sessions
}

// storeWriter is the commit seam of one independent store of the backend:
// its crash-atomic group writer (nil when the store keeps no WAL) and its
// per-shard flush telemetry. Rows are written through the top-level Backend
// — the partitioning guarantees every row of partition i routes to store i,
// so the ordinary write methods land inside store i's open group.
type storeWriter struct {
	batch   kvstore.BatchWriter
	commitH *metrics.Histogram // durability wait per flushed group
	flushes *metrics.Counter   // groups sealed on this store
}

// flushJob is one extracted cycle moving through the commit stages.
type flushJob struct {
	parts    []*shardDelta // per store, aligned with Pipeline.stores
	total    int           // events in the cycle
	sessions int64         // resident sessions after extraction
	start    time.Time     // cycle start (inbox swap)
	waits    []kvstore.Durability
	waited   bool
	syncs    int64
	err      error
}

// Pipeline is the streaming ingestion subsystem. Append may be called from
// any number of goroutines; Flush, Close and Stats are also safe for
// concurrent use.
type Pipeline struct {
	tables storage.Backend
	opts   Options

	flushH      *metrics.Histogram // committed-flush latency; nil-safe
	commitWaitH *metrics.Histogram // extraction blocked on the commit handoff

	// stores/route are the per-store commit seam: one writer per
	// independent store, and the backend's routing functions for
	// partitioning deltas onto them (route is unused with one store).
	stores []storeWriter
	route  storage.ShardedCommits

	shards []ingestShard

	mu        sync.Mutex
	cond      *sync.Cond
	free      int   // admission credits left (negative while an oversize batch drains)
	reserving int   // oversize admissions waiting to reserve the whole pool
	queued    int64 // events admitted, not yet acknowledged durable
	buffered  int64 // events admitted, not yet extracted (subset of queued)
	closed    bool
	failed    error // first commit error; poisons the pipeline
	stats     Stats

	kick    chan struct{}
	jobs    chan *flushJob // coordinator -> committer, unbuffered
	acks    chan *flushJob // committer -> acker, cap MaxInflight-1
	ackDone chan struct{}
	done    chan struct{}

	// spuriousWakes counts timer ticks that arrive sooner after the last
	// re-arm than the flush interval allows. With correct stop-and-drain
	// timer hygiene this is impossible — a tick always follows a full
	// interval — so the regression test asserts it stays exactly zero under
	// kick-heavy load. (A mishandled timer.Reset used to leave the expiry
	// of a raced kick in the channel: the coordinator woke again
	// immediately and flushed a premature, often empty, tiny cycle.)
	spuriousWakes atomic.Int64

	// Abort state (CloseCtx): once set, the extraction and commit loops stop
	// at their next poll — in-flight WAL batch groups roll back via the
	// commit's AbortBatch path, exactly like any other commit error — and
	// the pipeline poisons itself with the cause. Checked with a single
	// atomic load between table writes, so the flush hot path is untouched.
	aborted    atomic.Bool
	abortCause atomic.Value // error

	cycleMu sync.Mutex // serializes extraction cycles with Forget
}

// ingestShard owns the inbox and the resident sessions of the traces
// assigned to it. The inbox is touched by producers under mu; sessions are
// touched only by the coordinator's extraction pass, which is serialized
// under cycleMu.
type ingestShard struct {
	mu       sync.Mutex
	inbox    []model.Event
	sessions map[model.TraceID]*session
}

// New returns a running pipeline writing through tables.
func New(tables storage.Backend, opts Options) (*Pipeline, error) {
	if opts.Policy != model.SC && opts.Policy != model.STNM {
		return nil, fmt.Errorf("ingest: policy %v is not indexable", opts.Policy)
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.FlushEvents <= 0 {
		opts.FlushEvents = 1024
	}
	if opts.FlushInterval <= 0 {
		opts.FlushInterval = 50 * time.Millisecond
	}
	if opts.QueueEvents <= 0 {
		opts.QueueEvents = 4 * opts.FlushEvents
	}
	if opts.QueueEvents < 2*opts.FlushEvents {
		opts.QueueEvents = 2 * opts.FlushEvents
	}
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = 2
	}
	p := &Pipeline{
		tables:  tables,
		opts:    opts,
		shards:  make([]ingestShard, opts.Workers),
		free:    opts.QueueEvents,
		kick:    make(chan struct{}, 1),
		jobs:    make(chan *flushJob),
		acks:    make(chan *flushJob, opts.MaxInflight-1),
		ackDone: make(chan struct{}),
		done:    make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	p.flushH = opts.Metrics.Histogram("seqlog_ingest_flush_seconds")
	p.commitWaitH = opts.Metrics.Histogram("seqlog_ingest_commit_wait_seconds")
	if sc, ok := tables.(storage.ShardedCommits); ok {
		p.route = sc
		p.stores = make([]storeWriter, tables.NumShards())
		for i := range p.stores {
			p.stores[i].batch = sc.ShardBatch(i)
		}
	} else {
		// A backend without the per-store seam commits through its fan-out
		// Batch() writer as one unit (still pipelined when the writer can
		// seal).
		p.stores = []storeWriter{{batch: tables.Batch()}}
	}
	for i := range p.stores {
		l := metrics.Label{Key: "shard", Value: fmt.Sprintf("%d", i)}
		p.stores[i].commitH = opts.Metrics.Histogram("seqlog_ingest_shard_commit_seconds", l)
		p.stores[i].flushes = opts.Metrics.Counter("seqlog_ingest_shard_flushes_total", l)
	}
	for i := range p.shards {
		p.shards[i].sessions = make(map[model.TraceID]*session)
	}
	go p.committer()
	go p.acker()
	go p.run()
	return p, nil
}

// shardFor maps a trace onto its affinity shard (Fibonacci mix, as the
// Builder does for pair keys).
func (p *Pipeline) shardFor(id model.TraceID) int {
	return int((uint64(id) * 0x9E3779B97F4A7C15) >> 32 % uint64(len(p.shards)))
}

// Append admits a batch of events into the pipeline. Admission is
// all-or-nothing per batch: in non-blocking mode a full queue refuses the
// whole batch with ErrOverloaded and nothing is enqueued; a batch larger
// than the queue itself waits for the pool to drain completely and then
// overdraws it, so even oversize batches are admitted in one piece. Events
// of one trace must be appended in timestamp order for the
// Builder-equivalence contract to hold; out-of-order events are still
// accepted and normalized forward, exactly as the serial path would.
func (p *Pipeline) Append(events []model.Event) error {
	return p.AppendCtx(context.Background(), events)
}

// AppendCtx is Append with a cancellable admission wait: a caller blocked on
// backpressure credits unblocks with ctx.Err() when ctx is done, and in that
// case nothing of the batch was admitted — cancellation cannot tear a batch.
func (p *Pipeline) AppendCtx(ctx context.Context, events []model.Event) error {
	if len(events) == 0 {
		return nil
	}
	if err := p.admit(ctx, len(events)); err != nil {
		return err
	}
	p.enqueue(events)
	return nil
}

// admit reserves n credits in one piece. A batch larger than the whole pool
// (oversize) registers as a reservation, waits until every credit is home,
// and then overdraws the pool — blocking even in non-blocking mode, since
// refusing it could never succeed and admitting it chunk-wise would tear the
// batch on a mid-batch failure, which is exactly what the ErrOverloaded
// contract rules out. Pending reservations pause ordinary blocking admits so
// an oversize batch cannot be starved by a steady trickle of small ones.
func (p *Pipeline) admit(ctx context.Context, n int) error {
	oversize := n > p.opts.QueueEvents
	done := ctx.Done()
	p.mu.Lock()
	defer p.mu.Unlock()
	if oversize {
		p.reserving++
		defer func() {
			p.reserving--
			p.cond.Broadcast()
		}()
	}
	stalled := false
	var stopWatch func() bool
	for {
		if done != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if p.closed {
			return ErrClosed
		}
		if p.failed != nil {
			return p.failed
		}
		ok := p.free >= n
		if oversize {
			ok = p.free >= p.opts.QueueEvents
		} else if p.reserving > 0 {
			ok = false
		}
		if ok {
			p.free -= n
			p.queued += int64(n)
			p.buffered += int64(n)
			p.stats.Accepted += int64(n)
			if stalled {
				p.stats.Stalls++
			}
			return nil
		}
		if !p.opts.Block && !oversize {
			p.stats.Stalls++
			p.kickFlusher()
			return ErrOverloaded
		}
		if done != nil && stopWatch == nil {
			// Registered lazily, only once a wait is actually needed: the
			// watcher wakes the cond so a canceled waiter re-checks ctx
			// instead of sleeping out the backpressure stall.
			stopWatch = context.AfterFunc(ctx, func() {
				p.mu.Lock()
				p.cond.Broadcast()
				p.mu.Unlock()
			})
			defer stopWatch()
		}
		stalled = true
		p.kickFlusher()
		p.cond.Wait()
	}
}

// enqueue distributes admitted events onto their affinity shards and kicks
// the coordinator when the size trigger is reached.
func (p *Pipeline) enqueue(events []model.Event) {
	// Group by shard first so each shard lock is taken once per call.
	byShard := make(map[int][]model.Event)
	for _, ev := range events {
		si := p.shardFor(ev.Trace)
		byShard[si] = append(byShard[si], ev)
	}
	for si, evs := range byShard {
		sh := &p.shards[si]
		sh.mu.Lock()
		sh.inbox = append(sh.inbox, evs...)
		sh.mu.Unlock()
	}
	p.mu.Lock()
	if p.buffered >= int64(p.opts.FlushEvents) {
		p.kickFlusher()
	}
	p.mu.Unlock()
}

// kickFlusher nudges the coordinator without blocking. Callers hold p.mu or
// don't — the channel is the synchronization.
func (p *Pipeline) kickFlusher() {
	select {
	case p.kick <- struct{}{}:
	default:
	}
}

// Flush commits everything admitted before the call and blocks until it is
// durable (or until the pipeline fails). With concurrent appenders it waits
// for a moment when the queue is empty, so it is a barrier primarily for
// single-producer use — the HTTP handler's end-of-request ack.
func (p *Pipeline) Flush() error {
	return p.FlushCtx(context.Background())
}

// FlushCtx is Flush with a cancellable wait: when ctx is done the caller
// unblocks with ctx.Err(). The flush itself is unaffected — other producers
// may be relying on the commit — only this caller stops waiting for it.
func (p *Pipeline) FlushCtx(ctx context.Context) error {
	done := ctx.Done()
	if done != nil {
		stop := context.AfterFunc(ctx, func() {
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
		})
		defer stop()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	// queued covers the full span admit → durable ack, so this also waits
	// out cycles that are past extraction but still inside commit or fsync.
	for p.queued > 0 && p.failed == nil {
		if done != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		p.kickFlusher()
		p.cond.Wait()
	}
	return p.failed
}

// Close drains the queue with a final commit and stops the pipeline. It is
// idempotent; the first error the pipeline hit (if any) is returned.
func (p *Pipeline) Close() error {
	p.mu.Lock()
	if p.closed {
		err := p.failed
		p.mu.Unlock()
		<-p.done
		return err
	}
	p.closed = true
	p.mu.Unlock()
	p.kickFlusher()
	<-p.done
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.failed
}

// CloseCtx is Close with a bounded drain: when ctx is done before the drain
// completes, the pipeline aborts — the in-flight flush stops at its next
// cooperative poll, open WAL batch groups roll back cleanly (no partial
// flush ever commits), and the pipeline poisons itself with the cause.
// Events admitted but not yet committed are lost, which is the crash
// contract re-ingestion already tolerates (watermark dedup makes replays
// idempotent).
func (p *Pipeline) CloseCtx(ctx context.Context) error {
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() {
			p.abort(context.Cause(ctx))
		})
		defer stop()
	}
	return p.Close()
}

// abortBox wraps the cause so abortCause always stores one concrete type
// (atomic.Value requires it).
type abortBox struct{ err error }

// abort poisons the pipeline with cause and wakes every waiter. Only the
// first cause sticks.
func (p *Pipeline) abort(cause error) {
	if cause == nil {
		cause = context.Canceled
	}
	p.mu.Lock()
	if !p.aborted.Load() {
		p.abortCause.Store(abortBox{err: cause})
		p.aborted.Store(true)
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	p.kickFlusher()
}

// abortedErr returns the abort cause, or nil while the pipeline is live.
// One atomic load on the fast path.
func (p *Pipeline) abortedErr() error {
	if !p.aborted.Load() {
		return nil
	}
	if b, ok := p.abortCause.Load().(abortBox); ok && b.err != nil {
		return b.err
	}
	return context.Canceled
}

// fail records the first pipeline error and wakes every waiter.
func (p *Pipeline) fail(err error) {
	p.mu.Lock()
	if p.failed == nil {
		p.failed = err
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Stats returns a snapshot of the pipeline counters.
func (p *Pipeline) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.stats
	st.Queued = p.queued
	return st
}

// Forget drops the resident sessions of pruned traces so their memory is
// reclaimed. The caller must have flushed (or not care about) pending
// events of those traces.
func (p *Pipeline) Forget(ids []model.TraceID) {
	p.cycleMu.Lock()
	defer p.cycleMu.Unlock()
	for _, id := range ids {
		delete(p.shards[p.shardFor(id)].sessions, id)
	}
}

// run is the coordinator: woken by size kicks and the age timer, it swaps
// and extracts pending inboxes into flush jobs and hands them downstream.
// Extraction is decoupled from durability — while a job's groups are inside
// fsync, the next cycle is already being extracted (double buffering); the
// handoff blocks only once MaxInflight cycles are past extraction, and that
// blocked time is what seqlog_ingest_commit_wait_seconds measures.
func (p *Pipeline) run() {
	defer close(p.done)
	timer := time.NewTimer(p.opts.FlushInterval)
	defer timer.Stop()
	armed := time.Now()
	for {
		select {
		case <-p.kick:
		case <-timer.C:
			if time.Since(armed) < p.opts.FlushInterval {
				// A drained timer can only deliver a tick a full interval
				// after its re-arm; an early one is a stale expiry that
				// leaked past a Reset (the premature-tiny-flush bug).
				p.spuriousWakes.Add(1)
			}
		}

		for {
			p.mu.Lock()
			runnable := p.buffered > 0 && p.failed == nil
			p.mu.Unlock()
			if !runnable {
				break
			}
			job, err := p.extractCycle()
			if err != nil {
				p.fail(err)
				break
			}
			if job == nil {
				// Credits are taken but the events have not reached their
				// shard inboxes yet (admit/enqueue race); the timer or the
				// enqueuer's own kick retries in a moment.
				break
			}
			wait := time.Now()
			p.jobs <- job
			p.commitWaitH.Observe(time.Since(wait))
		}

		// Re-arm the age timer. Stop and drain first: after a kick-driven
		// wake the timer may have expired concurrently, and a bare Reset
		// would leave that stale expiry in the channel — the next loop
		// iteration would wake immediately and flush a premature tiny cycle.
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(p.opts.FlushInterval)
		armed = time.Now()

		p.mu.Lock()
		closed := p.closed
		draining := p.closed && p.buffered > 0 && p.failed == nil
		p.mu.Unlock()
		if !closed {
			continue
		}
		if draining {
			// Admitted events still racing onto the inboxes; spin until the
			// final extraction sweeps them.
			p.kickFlusher()
			continue
		}
		close(p.jobs)
		<-p.ackDone
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
		return
	}
}

// extractCycle swaps every shard's inbox, extracts the deltas in parallel
// and partitions them per store, returning the flush job (nil when the
// inboxes were empty). It holds cycleMu only for the extraction itself, so
// the previous cycle's commit and fsync overlap the next cycle's
// extraction. The session recount happens here, outside the producers'
// admission mutex.
func (p *Pipeline) extractCycle() (*flushJob, error) {
	p.cycleMu.Lock()
	defer p.cycleMu.Unlock()

	pend := make([][]model.Event, len(p.shards))
	total := 0
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		pend[i], sh.inbox = sh.inbox, nil
		sh.mu.Unlock()
		total += len(pend[i])
	}
	if total == 0 {
		return nil, nil
	}
	start := time.Now()

	deltas := make([]*shardDelta, len(p.shards))
	err := parallel.ForEach(len(p.shards), p.opts.Workers, func(i int) error {
		if len(pend[i]) == 0 {
			return nil
		}
		d, err := p.extractShard(&p.shards[i], pend[i])
		deltas[i] = d
		return err
	})
	if err != nil {
		return nil, err
	}

	job := &flushJob{
		parts: p.partitionDeltas(deltas),
		total: total,
		start: start,
	}
	for i := range p.shards {
		job.sessions += int64(len(p.shards[i].sessions))
	}
	p.mu.Lock()
	p.buffered -= int64(total)
	p.mu.Unlock()
	return job, nil
}

// committer is the middle stage: one job at a time, it writes every store's
// partition in parallel and seals the groups. With MaxInflight 1 it also
// waits out durability before accepting the next job, restoring strictly
// serial commits.
func (p *Pipeline) committer() {
	defer close(p.acks)
	for job := range p.jobs {
		p.mu.Lock()
		failed := p.failed
		p.mu.Unlock()
		if failed != nil {
			job.err = failed
		} else {
			job.err = p.commitJob(job)
		}
		if job.err == nil && p.opts.MaxInflight <= 1 {
			job.err = p.waitJob(job)
		}
		p.acks <- job
	}
}

// acker is the final stage: it waits for every store's fsync and releases
// the job's credits. Keeping it off the committer goroutine is what lets
// cycle N+1's table writes overlap cycle N's fsync.
func (p *Pipeline) acker() {
	defer close(p.ackDone)
	for job := range p.acks {
		if job.err == nil && !job.waited {
			job.err = p.waitJob(job)
		}
		p.finishJob(job)
	}
}

// waitJob blocks until every store the job touched reports its group
// durable, timing each store's wait into its per-shard histogram. Waits on
// different stores run concurrently — N stores, N overlapping fsyncs.
func (p *Pipeline) waitJob(job *flushJob) error {
	job.waited = true
	active := 0
	for _, w := range job.waits {
		if w != nil {
			active++
		}
	}
	if active == 0 {
		return nil
	}
	return parallel.ForEach(len(job.waits), active, func(i int) error {
		w := job.waits[i]
		if w == nil {
			return nil
		}
		start := time.Now()
		if err := w.Wait(); err != nil {
			return err
		}
		p.stores[i].commitH.Observe(time.Since(start))
		return nil
	})
}

// finishJob is the ack point: it releases the job's credits and publishes
// its counters. flushH is observed outside p.mu — the producers' admission
// mutex is held only for the counter updates themselves.
func (p *Pipeline) finishJob(job *flushJob) {
	if job.err == nil {
		p.flushH.Observe(time.Since(job.start))
	}
	p.mu.Lock()
	if job.err != nil {
		if p.failed == nil {
			p.failed = job.err
		}
	} else {
		p.queued -= int64(job.total)
		p.free += job.total
		p.stats.Flushed += int64(job.total)
		p.stats.Batches++
		p.stats.Syncs += job.syncs
		p.stats.Sessions = job.sessions
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}
