// Package ingest is the streaming write path of the reproduction: a
// concurrent pipeline that accepts events continuously and maintains the
// pair index incrementally, the regime §4.2 of the paper argues the State
// method (Algorithm 8) exists for.
//
// Architecture (see DESIGN.md "Ingestion pipeline"):
//
//   - Append shards incoming events by trace id onto N affinity shards.
//     A trace always lands on the same shard, so per-trace arrival order —
//     the only order the index semantics need — survives sharding.
//   - Each shard keeps resident extraction sessions: one StateExtractor
//     (or last-event cell under SC) per live trace, fed across micro-batches
//     instead of re-deriving pairs from the stored prefix every flush the
//     way the batch Builder must.
//   - A single flusher goroutine swaps the shard inboxes when a flush
//     trigger fires (size or age), extracts deltas on all shards in
//     parallel, merges them, and commits the merged delta through
//     storage.Tables as ONE atomic group — BeginBatch … CommitBatch on a
//     durable store, which is one WAL fsync per flush. An acknowledged
//     flush therefore still means "fsynced", matching the serial path.
//   - A bounded credit pool applies backpressure: Append either blocks or
//     fails fast with ErrOverloaded when the queue is full.
//
// Equivalence contract, enforced by the oracle tests: when each trace's
// events are appended in timestamp order (any interleaving across traces,
// any chunking), the resulting tables are equivalent to a single serial
// index.Builder.Update of the whole log — identical Seq, Count,
// ReverseCount and LastChecked rows, and an Index holding exactly the same
// entries (append order within a posting list may differ, as it already
// does between two Builder runs).
package ingest

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"seqlog/internal/kvstore"
	"seqlog/internal/metrics"
	"seqlog/internal/model"
	"seqlog/internal/parallel"
	"seqlog/internal/storage"
)

// ErrOverloaded is returned by non-blocking Append when the input queue
// cannot take the batch. The caller should retry later; nothing of the
// batch was enqueued (all-or-nothing admission).
var ErrOverloaded = errors.New("ingest: pipeline overloaded, retry later")

// ErrClosed is returned by operations on a closed pipeline.
var ErrClosed = errors.New("ingest: pipeline is closed")

// Options configures a Pipeline.
type Options struct {
	// Policy is SC or STNM (STAM is not indexable, and the positional
	// partial-order extractor is batch-only — both are rejected).
	Policy model.Policy

	// Period is the index partition new entries are appended to.
	Period string

	// Workers is the shard / extraction-parallelism count.
	// Defaults to GOMAXPROCS.
	Workers int

	// FlushEvents triggers a flush once at least this many events are
	// buffered. Default 1024.
	FlushEvents int

	// FlushInterval bounds how long a buffered event waits before being
	// flushed. Default 50ms.
	FlushInterval time.Duration

	// QueueEvents bounds the input queue. Admission beyond it blocks or
	// fails with ErrOverloaded. Raised to 2×FlushEvents if smaller, so
	// backpressure can never deadlock the flush trigger. Default
	// 4×FlushEvents.
	QueueEvents int

	// Block selects the backpressure style of Append: true blocks the
	// caller until the queue drains, false fails fast with ErrOverloaded.
	Block bool

	// CommitLock, when set, is held around every table commit, so an
	// embedding engine can serialize flushes against its readers.
	CommitLock sync.Locker

	// BeforeCommit, when set, runs inside the commit (under CommitLock
	// and inside the atomic batch group, before the group fsync). The
	// engine uses it to persist alphabet growth in the same crash-atomic
	// unit as the events that introduced the new activities.
	BeforeCommit func() error

	// Sync, when set, is called after a commit on stores that do not
	// implement kvstore.BatchWriter (group commit subsumes it otherwise).
	Sync func() error

	// Metrics, when set, receives a seqlog_ingest_flush_seconds histogram
	// observing each committed flush cycle (swap + extract + group commit).
	// The counters of Stats are exposed by the embedding engine instead, so
	// they stay monotone across pipeline restarts.
	Metrics *metrics.Registry
}

// Stats is a snapshot of the pipeline counters.
type Stats struct {
	Queued   int64 `json:"queued"`             // events buffered right now
	Accepted int64 `json:"accepted"`           // events admitted in total
	Flushed  int64 `json:"flushed"`            // events committed to tables
	Batches  int64 `json:"batches"`            // committed flush cycles
	Syncs    int64 `json:"syncs"`              // group commits / fsyncs issued
	Stalls   int64 `json:"stalls"`             // Appends that blocked or were refused
	Sessions int64 `json:"sessions,omitempty"` // resident trace sessions
}

// Pipeline is the streaming ingestion subsystem. Append may be called from
// any number of goroutines; Flush, Close and Stats are also safe for
// concurrent use.
type Pipeline struct {
	tables storage.Backend
	opts   Options
	batch  kvstore.BatchWriter // nil when the store has no atomic groups
	flushH *metrics.Histogram  // committed-flush latency; nil-safe

	shards []ingestShard

	mu       sync.Mutex
	cond     *sync.Cond
	free     int   // admission credits left
	queued   int64 // events admitted, not yet committed
	closed   bool
	failed   error // first commit error; poisons the pipeline
	flushing bool
	stats    Stats

	kick chan struct{}
	done chan struct{}

	// Abort state (CloseCtx): once set, the extraction and commit loops stop
	// at their next poll — an in-flight WAL batch group rolls back via the
	// commit's AbortBatch defer, exactly like any other commit error — and
	// the pipeline poisons itself with the cause. Checked with a single
	// atomic load between table writes, so the flush hot path is untouched.
	aborted    atomic.Bool
	abortCause atomic.Value // error

	cycleMu sync.Mutex // serializes flush cycles with Forget
}

// ingestShard owns the inbox and the resident sessions of the traces
// assigned to it. The inbox is touched by producers under mu; sessions are
// touched only by the flusher's extraction pass, which is serialized.
type ingestShard struct {
	mu       sync.Mutex
	inbox    []model.Event
	sessions map[model.TraceID]*session
}

// New returns a running pipeline writing through tables.
func New(tables storage.Backend, opts Options) (*Pipeline, error) {
	if opts.Policy != model.SC && opts.Policy != model.STNM {
		return nil, fmt.Errorf("ingest: policy %v is not indexable", opts.Policy)
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.FlushEvents <= 0 {
		opts.FlushEvents = 1024
	}
	if opts.FlushInterval <= 0 {
		opts.FlushInterval = 50 * time.Millisecond
	}
	if opts.QueueEvents <= 0 {
		opts.QueueEvents = 4 * opts.FlushEvents
	}
	if opts.QueueEvents < 2*opts.FlushEvents {
		opts.QueueEvents = 2 * opts.FlushEvents
	}
	p := &Pipeline{
		tables: tables,
		opts:   opts,
		shards: make([]ingestShard, opts.Workers),
		free:   opts.QueueEvents,
		kick:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	p.flushH = opts.Metrics.Histogram("seqlog_ingest_flush_seconds")
	// Batch is nil when the store(s) keep no WAL; on a sharded backend it
	// is the fan-out group writer, so each flush commits atomically PER
	// SHARD (one WAL group and one fsync per shard per flush).
	p.batch = tables.Batch()
	for i := range p.shards {
		p.shards[i].sessions = make(map[model.TraceID]*session)
	}
	go p.run()
	return p, nil
}

// shardFor maps a trace onto its affinity shard (Fibonacci mix, as the
// Builder does for pair keys).
func (p *Pipeline) shardFor(id model.TraceID) int {
	return int((uint64(id) * 0x9E3779B97F4A7C15) >> 32 % uint64(len(p.shards)))
}

// Append admits a batch of events into the pipeline. Admission is
// all-or-nothing per chunk: in non-blocking mode a full queue refuses the
// whole batch with ErrOverloaded; in blocking mode the call waits for
// credits (large batches are admitted in queue-sized chunks, preserving
// order). Events of one trace must be appended in timestamp order for the
// Builder-equivalence contract to hold; out-of-order events are still
// accepted and normalized forward, exactly as the serial path would.
func (p *Pipeline) Append(events []model.Event) error {
	return p.AppendCtx(context.Background(), events)
}

// AppendCtx is Append with a cancellable admission wait: a caller blocked on
// backpressure credits (blocking mode, or an oversize batch) unblocks with
// ctx.Err() when ctx is done. Chunks admitted before the cancellation stay
// admitted — admission is all-or-nothing per chunk, never per batch.
func (p *Pipeline) AppendCtx(ctx context.Context, events []model.Event) error {
	oversize := len(events) > p.opts.QueueEvents
	for len(events) > 0 {
		n := len(events)
		if n > p.opts.QueueEvents {
			n = p.opts.QueueEvents
		}
		if err := p.admit(ctx, n, oversize); err != nil {
			return err
		}
		p.enqueue(events[:n])
		events = events[n:]
	}
	return nil
}

// admit takes n credits. oversize marks a chunk of a batch larger than the
// queue, which must block regardless of mode (refusing would tear the
// batch).
func (p *Pipeline) admit(ctx context.Context, n int, oversize bool) error {
	done := ctx.Done()
	p.mu.Lock()
	defer p.mu.Unlock()
	stalled := false
	var stopWatch func() bool
	for {
		if done != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if p.closed {
			return ErrClosed
		}
		if p.failed != nil {
			return p.failed
		}
		if p.free >= n {
			p.free -= n
			p.queued += int64(n)
			p.stats.Accepted += int64(n)
			if stalled {
				p.stats.Stalls++
			}
			return nil
		}
		if !p.opts.Block && !oversize {
			p.stats.Stalls++
			p.kickFlusher()
			return ErrOverloaded
		}
		if done != nil && stopWatch == nil {
			// Registered lazily, only once a wait is actually needed: the
			// watcher wakes the cond so a canceled waiter re-checks ctx
			// instead of sleeping out the backpressure stall.
			stopWatch = context.AfterFunc(ctx, func() {
				p.mu.Lock()
				p.cond.Broadcast()
				p.mu.Unlock()
			})
			defer stopWatch()
		}
		stalled = true
		p.kickFlusher()
		p.cond.Wait()
	}
}

// enqueue distributes admitted events onto their affinity shards and kicks
// the flusher when the size trigger is reached.
func (p *Pipeline) enqueue(events []model.Event) {
	// Group by shard first so each shard lock is taken once per call.
	byShard := make(map[int][]model.Event)
	for _, ev := range events {
		si := p.shardFor(ev.Trace)
		byShard[si] = append(byShard[si], ev)
	}
	for si, evs := range byShard {
		sh := &p.shards[si]
		sh.mu.Lock()
		sh.inbox = append(sh.inbox, evs...)
		sh.mu.Unlock()
	}
	p.mu.Lock()
	if p.queued >= int64(p.opts.FlushEvents) {
		p.kickFlusher()
	}
	p.mu.Unlock()
}

// kickFlusher nudges the flusher without blocking. Callers hold p.mu or
// don't — the channel is the synchronization.
func (p *Pipeline) kickFlusher() {
	select {
	case p.kick <- struct{}{}:
	default:
	}
}

// Flush commits everything admitted before the call and blocks until done
// (or until the pipeline fails). With concurrent appenders it waits for a
// moment when the queue is empty, so it is a barrier primarily for
// single-producer use — the HTTP handler's end-of-request ack.
func (p *Pipeline) Flush() error {
	return p.FlushCtx(context.Background())
}

// FlushCtx is Flush with a cancellable wait: when ctx is done the caller
// unblocks with ctx.Err(). The flusher itself is unaffected — other
// producers may be relying on the commit — only this caller stops waiting
// for it.
func (p *Pipeline) FlushCtx(ctx context.Context) error {
	done := ctx.Done()
	if done != nil {
		stop := context.AfterFunc(ctx, func() {
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
		})
		defer stop()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for (p.queued > 0 || p.flushing) && p.failed == nil {
		if done != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		p.kickFlusher()
		p.cond.Wait()
	}
	return p.failed
}

// Close drains the queue with a final commit and stops the flusher. It is
// idempotent; the first error the pipeline hit (if any) is returned.
func (p *Pipeline) Close() error {
	p.mu.Lock()
	if p.closed {
		err := p.failed
		p.mu.Unlock()
		<-p.done
		return err
	}
	p.closed = true
	p.mu.Unlock()
	p.kickFlusher()
	<-p.done
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.failed
}

// CloseCtx is Close with a bounded drain: when ctx is done before the drain
// completes, the pipeline aborts — the in-flight flush stops at its next
// cooperative poll, an open WAL batch group rolls back cleanly (no partial
// flush ever commits), and the pipeline poisons itself with the cause.
// Events admitted but not yet committed are lost, which is the crash
// contract re-ingestion already tolerates (watermark dedup makes replays
// idempotent).
func (p *Pipeline) CloseCtx(ctx context.Context) error {
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() {
			p.abort(context.Cause(ctx))
		})
		defer stop()
	}
	return p.Close()
}

// abortBox wraps the cause so abortCause always stores one concrete type
// (atomic.Value requires it).
type abortBox struct{ err error }

// abort poisons the pipeline with cause and wakes every waiter. Only the
// first cause sticks.
func (p *Pipeline) abort(cause error) {
	if cause == nil {
		cause = context.Canceled
	}
	p.mu.Lock()
	if !p.aborted.Load() {
		p.abortCause.Store(abortBox{err: cause})
		p.aborted.Store(true)
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	p.kickFlusher()
}

// abortedErr returns the abort cause, or nil while the pipeline is live.
// One atomic load on the fast path.
func (p *Pipeline) abortedErr() error {
	if !p.aborted.Load() {
		return nil
	}
	if b, ok := p.abortCause.Load().(abortBox); ok && b.err != nil {
		return b.err
	}
	return context.Canceled
}

// Stats returns a snapshot of the pipeline counters.
func (p *Pipeline) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.stats
	st.Queued = p.queued
	return st
}

// Forget drops the resident sessions of pruned traces so their memory is
// reclaimed. The caller must have flushed (or not care about) pending
// events of those traces.
func (p *Pipeline) Forget(ids []model.TraceID) {
	p.cycleMu.Lock()
	defer p.cycleMu.Unlock()
	for _, id := range ids {
		delete(p.shards[p.shardFor(id)].sessions, id)
	}
}

// run is the flusher loop: one goroutine, woken by size kicks and the age
// timer, so commits are naturally serialized.
func (p *Pipeline) run() {
	defer close(p.done)
	timer := time.NewTimer(p.opts.FlushInterval)
	defer timer.Stop()
	for {
		select {
		case <-p.kick:
		case <-timer.C:
		}
		timer.Reset(p.opts.FlushInterval)

		p.mu.Lock()
		runnable := p.queued > 0 && p.failed == nil
		if runnable {
			p.flushing = true
		}
		p.mu.Unlock()

		if runnable {
			err := p.runCycle()
			p.mu.Lock()
			p.flushing = false
			if err != nil && p.failed == nil {
				p.failed = err
			}
			drain := p.closed && p.queued > 0 && p.failed == nil
			closed := p.closed
			p.cond.Broadcast()
			p.mu.Unlock()
			if drain {
				// Keep draining to the final commit.
				p.kickFlusher()
				continue
			}
			if closed {
				return
			}
			continue
		}

		p.mu.Lock()
		p.cond.Broadcast()
		closed := p.closed
		p.mu.Unlock()
		if closed {
			return
		}
	}
}

// runCycle performs one flush: swap inboxes, extract deltas in parallel,
// merge, commit as one group. Credits are released only after the commit
// succeeded — an acknowledged Append is durable once Flush returns.
func (p *Pipeline) runCycle() error {
	p.cycleMu.Lock()
	defer p.cycleMu.Unlock()

	pend := make([][]model.Event, len(p.shards))
	total := 0
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		pend[i], sh.inbox = sh.inbox, nil
		sh.mu.Unlock()
		total += len(pend[i])
	}
	if total == 0 {
		return nil
	}
	start := time.Now()

	deltas := make([]*shardDelta, len(p.shards))
	err := parallel.ForEach(len(p.shards), p.opts.Workers, func(i int) error {
		if len(pend[i]) == 0 {
			return nil
		}
		d, err := p.extractShard(&p.shards[i], pend[i])
		deltas[i] = d
		return err
	})
	if err == nil {
		err = p.commit(mergeDeltas(deltas))
	}

	p.mu.Lock()
	if err == nil {
		p.flushH.Observe(time.Since(start))
		p.queued -= int64(total)
		p.free += total
		p.stats.Flushed += int64(total)
		p.stats.Batches++
		var sess int64
		for i := range p.shards {
			sess += int64(len(p.shards[i].sessions))
		}
		p.stats.Sessions = sess
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	return err
}
