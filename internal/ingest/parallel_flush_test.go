package ingest

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"seqlog/internal/kvstore"
	"seqlog/internal/model"
	"seqlog/internal/shard"
	"seqlog/internal/storage"
)

// Tests of the parallel write path: per-store flushers, pipelined group
// commits, all-or-nothing admission and timer hygiene.

// TestTimerHygieneNoSpuriousWakes is the regression test of the flusher's
// timer misuse: a kick-driven wake that raced a timer expiry used to Reset
// the timer without draining it, so the stale tick fired an immediate bogus
// wake (and a premature tiny flush). With stop-and-drain hygiene a tick can
// only ever arrive a full interval after the re-arm, which the pipeline
// counts — the workload below forces the kick/expiry race every round and
// the counter must stay exactly zero.
func TestTimerHygieneNoSpuriousWakes(t *testing.T) {
	tb := storage.NewTables(kvstore.NewMemStore())
	const interval = 5 * time.Millisecond
	p, err := New(tb, Options{
		Policy:        model.STNM,
		Workers:       1,
		FlushEvents:   1, // every append kicks
		FlushInterval: interval,
		Block:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rounds := 50
	if testing.Short() {
		rounds = 15 // the race window is per-round; fewer rounds, same race
	}
	for i := 0; i < rounds; i++ {
		// Sleep one full interval so the pending expiry fires right around
		// the kick the append sends.
		time.Sleep(interval)
		ev := model.Event{Trace: 1, Activity: model.ActivityID(i % 3), TS: model.Timestamp(i + 1)}
		if err := p.Append([]model.Event{ev}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if n := p.spuriousWakes.Load(); n != 0 {
		t.Fatalf("%d spurious timer wakes leaked past the stop-and-drain (want 0)", n)
	}
	if st := p.Stats(); st.Flushed != int64(rounds) {
		t.Fatalf("flushed %d of %d", st.Flushed, rounds)
	}
}

// TestAdmissionAllOrNothing is the regression test of the ErrOverloaded
// contract: a refused batch must leave NOTHING admitted — the old chunked
// admission could enqueue a prefix of the batch and then fail, tearing it.
func TestAdmissionAllOrNothing(t *testing.T) {
	tb := storage.NewTables(kvstore.NewMemStore())
	var gate sync.Mutex
	p, err := New(tb, Options{
		Policy:        model.STNM,
		Workers:       1,
		FlushEvents:   4,
		QueueEvents:   8,
		FlushInterval: time.Hour, // only explicit kicks
		CommitLock:    &gate,
	})
	if err != nil {
		t.Fatal(err)
	}
	gate.Lock() // stall commits so credits never come home

	evs := func(n, from int) []model.Event {
		out := make([]model.Event, n)
		for i := range out {
			out[i] = model.Event{Trace: 1, Activity: model.ActivityID(i % 3), TS: model.Timestamp(from + i)}
		}
		return out
	}
	if err := p.Append(evs(6, 1)); err != nil {
		t.Fatal(err)
	}
	// 3 > the 2 free credits: the whole batch must bounce, not 2 of it.
	if err := p.Append(evs(3, 7)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("partial-fit batch: %v, want ErrOverloaded", err)
	}
	if st := p.Stats(); st.Accepted != 6 {
		t.Fatalf("refused batch leaked events into admission: %+v", st)
	}
	// Exactly-fitting remainder still goes through: the pool was untouched.
	if err := p.Append(evs(2, 7)); err != nil {
		t.Fatalf("exact-fit batch after a refusal: %v", err)
	}
	if err := p.Append(evs(1, 9)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("append onto a full pool: %v, want ErrOverloaded", err)
	}
	gate.Unlock()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Accepted != 8 || st.Flushed != 8 {
		t.Fatalf("stats %+v, want exactly the 8 admitted events flushed", st)
	}
}

// TestAdmissionOversizeWhole: a batch larger than the whole queue is
// admitted in one piece by overdrawing a fully-free pool — never chunked —
// and the overdraft applies backpressure to everything behind it.
func TestAdmissionOversizeWhole(t *testing.T) {
	tb := storage.NewTables(kvstore.NewMemStore())
	var gate sync.Mutex
	p, err := New(tb, Options{
		Policy:        model.STNM,
		Workers:       1,
		FlushEvents:   4,
		QueueEvents:   8,
		FlushInterval: time.Hour,
		CommitLock:    &gate,
	})
	if err != nil {
		t.Fatal(err)
	}
	gate.Lock()
	big := make([]model.Event, 25) // 3× the queue
	for i := range big {
		big[i] = model.Event{Trace: 1, Activity: model.ActivityID(i % 4), TS: model.Timestamp(i + 1)}
	}
	if err := p.Append(big); err != nil {
		t.Fatalf("oversize batch onto a free pool: %v", err)
	}
	if st := p.Stats(); st.Accepted != 25 {
		t.Fatalf("oversize batch admitted partially: %+v", st)
	}
	if err := p.Append(big[:1]); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("append behind an overdraft: %v, want ErrOverloaded", err)
	}
	gate.Unlock()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if got, want := dumpTables(t, tb, ""), serialDump(t, big, model.STNM, ""); got != want {
		t.Fatal("oversize admission not indexed equivalently to the serial build")
	}
}

// TestAppendCtxCanceledAdmitsNothing: a cancellation during the admission
// wait must leave the batch fully unadmitted (the cancelled caller will
// retry the whole batch; a torn half would then be double-ingested).
func TestAppendCtxCanceledAdmitsNothing(t *testing.T) {
	tb := storage.NewTables(kvstore.NewMemStore())
	var gate sync.Mutex
	p, err := New(tb, Options{
		Policy:        model.STNM,
		Workers:       1,
		FlushEvents:   4,
		QueueEvents:   8,
		FlushInterval: time.Hour,
		Block:         true,
		CommitLock:    &gate,
	})
	if err != nil {
		t.Fatal(err)
	}
	gate.Lock()
	fill := make([]model.Event, 8)
	for i := range fill {
		fill[i] = model.Event{Trace: 1, Activity: 0, TS: model.Timestamp(i + 1)}
	}
	if err := p.Append(fill); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err = p.AppendCtx(ctx, []model.Event{{Trace: 2, Activity: 0, TS: 1}, {Trace: 2, Activity: 1, TS: 2}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled admission wait: %v, want DeadlineExceeded", err)
	}
	if st := p.Stats(); st.Accepted != 8 {
		t.Fatalf("cancelled batch leaked events into admission: %+v", st)
	}
	gate.Unlock()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Flushed != 8 {
		t.Fatalf("flushed %d, want exactly the 8 admitted events", st.Flushed)
	}
}

// shardedMemTables returns an n-store backend over memstores.
func shardedMemTables(t *testing.T, n int) *shard.Tables {
	t.Helper()
	stores := make([]kvstore.Store, n)
	for i := range stores {
		stores[i] = kvstore.NewMemStore()
	}
	st, err := shard.New(stores, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStreamShardedEqualsSerial is the cross-shard reducer's oracle: a
// pipeline driving N independent stores through per-store parallel flushers
// must produce tables observably identical to one serial Builder on a single
// store — same rows through the scatter-gathered view, any shard count.
func TestStreamShardedEqualsSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for _, policy := range []model.Policy{model.SC, model.STNM} {
		for _, nshards := range []int{2, 3} {
			for iter := 0; iter < 3; iter++ {
				events := randomLog(rng, 1+rng.Intn(6), 200, 4)
				want := serialDump(t, events, policy, "")

				st := shardedMemTables(t, nshards)
				p, err := New(st, Options{
					Policy:        policy,
					Workers:       4,
					FlushEvents:   8,
					FlushInterval: time.Millisecond,
					MaxInflight:   3,
					Block:         true,
				})
				if err != nil {
					t.Fatal(err)
				}
				if len(p.stores) != nshards {
					t.Fatalf("pipeline found %d stores on a %d-shard backend", len(p.stores), nshards)
				}
				for lo := 0; lo < len(events); {
					hi := lo + 1 + rng.Intn(12)
					if hi > len(events) {
						hi = len(events)
					}
					if err := p.Append(events[lo:hi]); err != nil {
						t.Fatal(err)
					}
					lo = hi
				}
				if err := p.Close(); err != nil {
					t.Fatal(err)
				}
				if got := dumpTables(t, st, ""); got != want {
					t.Fatalf("policy=%v shards=%d iter=%d: sharded stream diverges from serial build\ngot:\n%s\nwant:\n%s",
						policy, nshards, iter, got, want)
				}
			}
		}
	}
}

// TestParallelFlushersRaceHammer drives the full concurrent surface at once
// — parallel producers, explicit Flush barriers, Forget, per-store parallel
// flushers over durable sharded stores, pipelined commits — and then checks
// the oracle. Run under -race this is the tentpole's concurrency proof.
func TestParallelFlushersRaceHammer(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	const producers = 4
	perTrace := 1200
	if testing.Short() {
		perTrace = 400 // same shape, bounded wall clock for check.sh tiers
	}
	events := randomLog(rng, producers*4, perTrace, 5)
	want := serialDump(t, events, model.STNM, "")

	parts := make([][]model.Event, producers)
	for _, ev := range events {
		pi := int(ev.Trace) % producers
		parts[pi] = append(parts[pi], ev)
	}

	root := t.TempDir()
	stores := make([]kvstore.Store, 2)
	for i := range stores {
		ds, err := kvstore.OpenDisk(filepath.Join(root, fmt.Sprintf("s%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		defer ds.Close()
		stores[i] = ds
	}
	st, err := shard.New(stores, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(st, Options{
		Policy:        model.STNM,
		Workers:       4,
		FlushEvents:   32,
		FlushInterval: time.Millisecond,
		MaxInflight:   3,
		Block:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for pi := 0; pi < producers; pi++ {
		wg.Add(1)
		go func(evs []model.Event, seed int64) {
			defer wg.Done()
			prng := rand.New(rand.NewSource(seed))
			for lo := 0; lo < len(evs); {
				hi := lo + 1 + prng.Intn(9)
				if hi > len(evs) {
					hi = len(evs)
				}
				if err := p.Append(evs[lo:hi]); err != nil {
					t.Error(err)
					return
				}
				if prng.Intn(8) == 0 {
					if err := p.Flush(); err != nil {
						t.Error(err)
						return
					}
				}
				lo = hi
			}
		}(parts[pi], int64(pi+1))
	}
	stop := make(chan struct{})
	var chaos sync.WaitGroup
	chaos.Add(1)
	go func() { // Forget races the extraction cycles; sessions reload lazily.
		defer chaos.Done()
		prng := rand.New(rand.NewSource(93))
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
				p.Forget([]model.TraceID{model.TraceID(1 + prng.Intn(producers*4))})
			}
		}
	}()
	wg.Wait()
	close(stop)
	chaos.Wait()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if got := dumpTables(t, st, ""); got != want {
		t.Fatalf("hammered sharded stream diverges from serial build\ngot:\n%s\nwant:\n%s", got, want)
	}
	st2 := p.Stats()
	if st2.Flushed != int64(len(events)) || st2.Queued != 0 {
		t.Fatalf("stats after close: %+v, want %d flushed", st2, len(events))
	}
}

// runShardedStreamTorture streams the chunks through a pipeline over a
// 2-store sharded backend on ffs, flushing after each chunk. It returns how
// many flushes were acknowledged (durable on every shard they touched) and,
// when dump is set, the per-shard table dumps after each acknowledged chunk.
func runShardedStreamTorture(t *testing.T, ffs *kvstore.FaultFS, root string, chunks [][]model.Event, dump bool) (acked int, states [][]string) {
	t.Helper()
	const nshards = 2
	stores := make([]kvstore.Store, nshards)
	disks := make([]*kvstore.DiskStore, nshards)
	for i := range stores {
		ds, err := kvstore.OpenDiskWith(filepath.Join(root, fmt.Sprintf("s%d", i)), kvstore.DiskOptions{FS: ffs})
		if err != nil {
			return 0, nil
		}
		defer ds.Close()
		ds.CompactAt = 0
		stores[i], disks[i] = ds, ds
	}
	st, err := shard.New(stores, shard.Options{})
	if err != nil {
		return 0, nil
	}
	p, err := New(st, Options{
		Policy:        model.STNM,
		Workers:       2,
		FlushEvents:   1 << 20, // only explicit flushes: cycle == chunk
		FlushInterval: time.Hour,
		Block:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if dump {
		states = make([][]string, nshards)
		for i := range states {
			states[i] = []string{dumpTables(t, storage.NewTables(disks[i]), "")}
		}
	}
	for _, c := range chunks {
		if err := p.Append(c); err != nil {
			return acked, states
		}
		if err := p.Flush(); err != nil {
			return acked, states
		}
		acked++
		if dump {
			for i := range states {
				states[i] = append(states[i], dumpTables(t, storage.NewTables(disks[i]), ""))
			}
		}
	}
	return acked, states
}

// TestShardedStreamCrashAckedDurableEveryShard sweeps a power cut across the
// interleaved write streams of a 2-shard pipeline and asserts the durability
// contract of the parallel flushers: every ACKED flush is fsynced on every
// shard it touched (each shard recovers at least the acked chunk prefix),
// and each shard individually recovers to a whole-flush prefix (per-shard
// group atomicity, never half a flush).
func TestShardedStreamCrashAckedDurableEveryShard(t *testing.T) {
	chunks := crashChunks()
	root := t.TempDir()

	probe := kvstore.NewFaultFS(nil)
	acked, states := runShardedStreamTorture(t, probe, filepath.Join(root, "probe"), chunks, true)
	if acked != len(chunks) {
		t.Fatalf("clean run acked %d of %d flushes", acked, len(chunks))
	}
	total := probe.BytesWritten()
	if total == 0 {
		t.Fatal("probe run wrote nothing")
	}

	points := int64(128)
	if testing.Short() {
		points = 32 // sparser sweep, same boundary coverage per flush
	}
	stride := total / points
	if stride < 1 {
		stride = 1
	}
	for b := int64(0); b < total; b += stride {
		testShardedCrashAt(t, root, chunks, states, b)
	}
	testShardedCrashAt(t, root, chunks, states, total-1)
}

func testShardedCrashAt(t *testing.T, root string, chunks [][]model.Event, states [][]string, b int64) {
	t.Helper()
	ffs := kvstore.NewFaultFS(nil)
	ffs.CrashAfterBytes(b)
	dir := filepath.Join(root, fmt.Sprintf("b%06d", b))
	acked, _ := runShardedStreamTorture(t, ffs, dir, chunks, false)
	if !ffs.Crashed() {
		t.Fatalf("byte budget %d never triggered", b)
	}
	for i := range states {
		ds, err := kvstore.OpenDisk(filepath.Join(dir, fmt.Sprintf("s%d", i)))
		if err != nil {
			t.Fatalf("crash at byte %d: shard %d strict recovery failed: %v", b, i, err)
		}
		got := dumpTables(t, storage.NewTables(ds), "")
		ds.Close()
		// At least the acked prefix (the durability contract); at most one
		// further flush that reached the disk without its ack.
		match := false
		for k := acked; k <= acked+1 && k < len(states[i]); k++ {
			if states[i][k] == got {
				match = true
				break
			}
		}
		if !match {
			t.Fatalf("crash at byte %d (acked %d): shard %d did not recover to an acked-covering whole-flush prefix\ngot:\n%s",
				b, acked, i, got)
		}
	}
}
