package ingest

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"seqlog/internal/index"
	"seqlog/internal/kvstore"
	"seqlog/internal/model"
	"seqlog/internal/pairs"
	"seqlog/internal/storage"
)

// The crash sweep for the tentpole's durability claim: every pipeline flush
// is one WAL record group, so a power cut at any byte recovers the tables
// to the state after some whole number of flushes — a committed-batch
// prefix, never half a flush.

// crashChunks returns the workload as explicit flush-sized chunks. The test
// pins flush boundaries to chunks (huge thresholds + explicit Flush), so
// the committed-prefix states are enumerable.
func crashChunks() [][]model.Event {
	rng := rand.New(rand.NewSource(81))
	events := randomLog(rng, 3, 48, 3)
	var chunks [][]model.Event
	for lo := 0; lo < len(events); lo += 8 {
		hi := lo + 8
		if hi > len(events) {
			hi = len(events)
		}
		chunks = append(chunks, events[lo:hi])
	}
	return chunks
}

// chunkStates computes the oracle fingerprint after each whole chunk via
// serial Builder updates on a memory store.
func chunkStates(t *testing.T, chunks [][]model.Event) []string {
	t.Helper()
	tb := storage.NewTables(kvstore.NewMemStore())
	b, err := index.NewBuilder(tb, index.Options{Policy: model.STNM, Method: pairs.State, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	states := []string{dumpTables(t, tb, "")}
	for _, c := range chunks {
		if _, err := b.Update(c); err != nil {
			t.Fatal(err)
		}
		states = append(states, dumpTables(t, tb, ""))
	}
	return states
}

// runStreamTorture streams the chunks through a pipeline over a DiskStore
// on ffs, flushing after each chunk. It returns the number of acknowledged
// (fsynced) flushes.
func runStreamTorture(t *testing.T, ffs *kvstore.FaultFS, dir string, chunks [][]model.Event) int {
	t.Helper()
	ds, err := kvstore.OpenDiskWith(dir, kvstore.DiskOptions{FS: ffs})
	if err != nil {
		return 0
	}
	defer ds.Close()
	ds.CompactAt = 0
	tb := storage.NewTables(ds)
	p, err := New(tb, Options{
		Policy:        model.STNM,
		Workers:       2,
		FlushEvents:   1 << 20, // only explicit flushes
		FlushInterval: time.Hour,
		Block:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	acked := 0
	for _, c := range chunks {
		if err := p.Append(c); err != nil {
			return acked
		}
		if err := p.Flush(); err != nil {
			return acked
		}
		acked++
	}
	return acked
}

// TestStreamCrashRecoversCommittedPrefix sweeps a crash across the write
// stream of the streamed workload and asserts recovery lands on a whole
// number of flushes.
func TestStreamCrashRecoversCommittedPrefix(t *testing.T) {
	chunks := crashChunks()
	states := chunkStates(t, chunks)
	root := t.TempDir()

	probe := kvstore.NewFaultFS(nil)
	if acked := runStreamTorture(t, probe, filepath.Join(root, "probe"), chunks); acked != len(chunks) {
		t.Fatalf("clean run acked %d of %d flushes", acked, len(chunks))
	}
	total := probe.BytesWritten()
	if total == 0 {
		t.Fatal("probe run wrote nothing")
	}

	// Sample the byte positions: every boundary region matters equally and
	// a full sweep is covered at the kvstore layer; here a stride plus the
	// first/last bytes keeps the tier fast while crossing every flush.
	points := int64(192)
	if testing.Short() {
		points = 48 // sparser sweep, same boundary coverage per flush
	}
	stride := total / points
	if stride < 1 {
		stride = 1
	}
	for b := int64(0); b < total; b += stride {
		testStreamCrashAt(t, root, chunks, states, b)
	}
	testStreamCrashAt(t, root, chunks, states, total-1)
}

func testStreamCrashAt(t *testing.T, root string, chunks [][]model.Event, states []string, b int64) {
	t.Helper()
	ffs := kvstore.NewFaultFS(nil)
	ffs.CrashAfterBytes(b)
	dir := filepath.Join(root, fmt.Sprintf("b%06d", b))
	acked := runStreamTorture(t, ffs, dir, chunks)
	if !ffs.Crashed() {
		t.Fatalf("byte budget %d never triggered", b)
	}

	ds, err := kvstore.OpenDisk(dir)
	if err != nil {
		t.Fatalf("crash at byte %d: strict recovery failed: %v", b, err)
	}
	defer ds.Close()
	if ds.Recovery().Degraded() {
		t.Fatalf("crash at byte %d: classified as corruption: %+v", b, ds.Recovery())
	}
	got := dumpTables(t, storage.NewTables(ds), "")

	// An acked flush is fsynced — at least `acked` chunks must be present.
	// One more flush may have reached the disk without its ack (crash
	// during the fsync or while reporting), so allow acked+1.
	for k := acked; k <= acked+1 && k < len(states); k++ {
		if states[k] == got {
			return
		}
	}
	t.Fatalf("crash at byte %d (acked %d): recovered tables are not a committed-flush prefix\ngot:\n%s",
		b, acked, got)
}

// TestStreamGroupCommitSyncs: on a durable store every flush is exactly one
// group commit — Syncs equals Batches, and the ack implies fsync.
func TestStreamGroupCommitSyncs(t *testing.T) {
	dir := t.TempDir()
	ds, err := kvstore.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	tb := storage.NewTables(ds)
	p, err := New(tb, Options{Policy: model.STNM, Workers: 2, FlushEvents: 1 << 20, FlushInterval: time.Hour, Block: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range crashChunks() {
		if err := p.Append(c); err != nil {
			t.Fatal(err)
		}
		if err := p.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Batches == 0 || st.Syncs != st.Batches {
		t.Fatalf("group commit accounting off: %+v (want syncs == batches > 0)", st)
	}
}
