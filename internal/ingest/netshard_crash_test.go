package ingest

import (
	"fmt"
	"net"
	"path/filepath"
	"testing"
	"time"

	"seqlog/internal/kvstore"
	"seqlog/internal/model"
	"seqlog/internal/netshard"
	"seqlog/internal/shard"
	"seqlog/internal/storage"
)

// The netshard variant of the sharded crash sweep: the pipeline's flushes
// travel over the wire to shard SERVERS whose stores sit on a fault-injected
// filesystem. The durability contract is identical to the local case — every
// acknowledged flush is fsynced on every shard server it touched, and each
// server individually recovers to a whole-flush prefix — because a remote
// commit group acks only after the server's crash-atomic batch commits.

// runNetshardStreamTorture mirrors runShardedStreamTorture with the stores
// behind netshard servers. Setup errors return (0, nil) like the local
// version: the sweep counts an attempt that never started as zero acks.
func runNetshardStreamTorture(t *testing.T, ffs *kvstore.FaultFS, root string, chunks [][]model.Event, dump bool) (acked int, states [][]string) {
	t.Helper()
	const nshards = 2
	backends := make([]storage.Backend, nshards)
	disks := make([]*kvstore.DiskStore, nshards)
	for i := range backends {
		ds, err := kvstore.OpenDiskWith(filepath.Join(root, fmt.Sprintf("s%d", i)), kvstore.DiskOptions{FS: ffs})
		if err != nil {
			return 0, nil
		}
		defer ds.Close()
		ds.CompactAt = 0
		tab := storage.NewTables(ds)
		srv := netshard.NewServer(tab, ds, netshard.ServerOptions{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		defer srv.Close()
		cl, err := netshard.Dial(ln.Addr().String(), netshard.Options{Shard: i})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		backends[i], disks[i] = cl, ds
	}
	st, err := shard.NewFromBackends(backends, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(st, Options{
		Policy:        model.STNM,
		Workers:       2,
		FlushEvents:   1 << 20, // only explicit flushes: cycle == chunk
		FlushInterval: time.Hour,
		Block:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if dump {
		states = make([][]string, nshards)
		for i := range states {
			states[i] = []string{dumpTables(t, storage.NewTables(disks[i]), "")}
		}
	}
	for _, c := range chunks {
		if err := p.Append(c); err != nil {
			return acked, states
		}
		if err := p.Flush(); err != nil {
			return acked, states
		}
		acked++
		if dump {
			for i := range states {
				states[i] = append(states[i], dumpTables(t, storage.NewTables(disks[i]), ""))
			}
		}
	}
	return acked, states
}

// TestNetshardStreamCrashAckedDurable sweeps a server-side power cut across
// the write streams of a pipeline committing through two netshard servers.
// Sparser than the local sweep (the wire adds per-point cost) but the same
// contract: strict recovery succeeds and every server recovers to an
// acked-covering whole-flush prefix.
func TestNetshardStreamCrashAckedDurable(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep is slow; run without -short")
	}
	chunks := crashChunks()
	root := t.TempDir()

	probe := kvstore.NewFaultFS(nil)
	acked, states := runNetshardStreamTorture(t, probe, filepath.Join(root, "probe"), chunks, true)
	if acked != len(chunks) {
		t.Fatalf("clean run acked %d of %d flushes", acked, len(chunks))
	}
	total := probe.BytesWritten()
	if total == 0 {
		t.Fatal("probe run wrote nothing")
	}

	stride := total / 32
	if stride < 1 {
		stride = 1
	}
	for b := int64(0); b < total; b += stride {
		testNetshardCrashAt(t, root, chunks, states, b)
	}
	testNetshardCrashAt(t, root, chunks, states, total-1)
}

func testNetshardCrashAt(t *testing.T, root string, chunks [][]model.Event, states [][]string, b int64) {
	t.Helper()
	ffs := kvstore.NewFaultFS(nil)
	ffs.CrashAfterBytes(b)
	dir := filepath.Join(root, fmt.Sprintf("b%06d", b))
	acked, _ := runNetshardStreamTorture(t, ffs, dir, chunks, false)
	if !ffs.Crashed() {
		t.Fatalf("byte budget %d never triggered", b)
	}
	for i := range states {
		ds, err := kvstore.OpenDisk(filepath.Join(dir, fmt.Sprintf("s%d", i)))
		if err != nil {
			t.Fatalf("crash at byte %d: shard server %d strict recovery failed: %v", b, i, err)
		}
		got := dumpTables(t, storage.NewTables(ds), "")
		ds.Close()
		// At least the acked prefix (the durability contract); at most one
		// further flush that reached the disk without its ack.
		match := false
		for k := acked; k <= acked+1 && k < len(states[i]); k++ {
			if states[i][k] == got {
				match = true
				break
			}
		}
		if !match {
			t.Fatalf("crash at byte %d (acked %d): shard server %d did not recover to an acked-covering whole-flush prefix\ngot:\n%s",
				b, acked, i, got)
		}
	}
}
