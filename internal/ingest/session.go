package ingest

import (
	"context"
	"sort"

	"seqlog/internal/model"
	"seqlog/internal/pairs"
	"seqlog/internal/storage"
)

// session is the resident extraction state of one live trace. Under STNM it
// wraps a streaming StateExtractor (Algorithm 8) fed across micro-batches;
// under SC only the last event is needed. The session also carries the
// timestamp-normalization watermark, so successive flushes bump ties exactly
// like one serial Builder.Update over the concatenated batches would.
//
// The Builder re-reads a trace's stored prefix and re-extracts all pairs on
// every Update; a session pays that cost once, when the trace first appears
// on the stream, and O(batch) afterwards — the asymptotic win the paper
// claims for the State method in fully dynamic environments.
type session struct {
	sc      bool
	ext     *pairs.StateExtractor // STNM
	lastAct model.ActivityID      // SC: pending first event of the next pair
	lastTS  model.Timestamp
	hasLast bool
	prev    model.Timestamp // last normalized timestamp (boundary)
}

// loadSession builds the session of a trace from its stored prefix. For
// STNM the prefix is replayed into a fresh extractor and the replayed
// completions are discarded — they are already indexed; extraction is
// prefix-stable, so every later Drain yields exactly the occurrences a
// batch re-extraction would keep after its boundary filter.
//
// The extractor is always the State flavor regardless of the Builder method
// configured for batch ingestion: all STNM flavors produce identical pair
// sets (the property tests enforce it), and State is the only streaming one.
func loadSession(tables storage.Backend, id model.TraceID, policy model.Policy) (*session, error) {
	old, _, err := tables.GetSeq(context.Background(), id)
	if err != nil {
		return nil, err
	}
	s := &session{sc: policy == model.SC, prev: model.Timestamp(-1 << 62)}
	if len(old) > 0 {
		s.prev = old[len(old)-1].TS
	}
	if s.sc {
		if len(old) > 0 {
			last := old[len(old)-1]
			s.lastAct, s.lastTS, s.hasLast = last.Activity, last.TS, true
		}
		return s, nil
	}
	s.ext = pairs.NewStreamingStateExtractor()
	for _, ev := range old {
		s.ext.Add(ev)
	}
	s.ext.Drain()
	return s, nil
}

// addBatch folds one flush's pending events into the session: stable-sort
// by timestamp, normalize against the running watermark (ties and
// regressions bump to prev+1, the Builder's rule verbatim), extract. It
// returns the normalized events (to append to Seq) and the pair completions
// they caused, in completion order.
func (s *session) addBatch(pending []model.Event) ([]model.TraceEvent, []pairs.PairOccurrence) {
	evs := make([]model.TraceEvent, len(pending))
	for i, e := range pending {
		evs[i] = model.TraceEvent{Activity: e.Activity, TS: e.TS}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })
	prev := s.prev
	for i := range evs {
		if evs[i].TS <= prev {
			evs[i].TS = prev + 1
		}
		prev = evs[i].TS
	}
	s.prev = prev

	var occs []pairs.PairOccurrence
	if s.sc {
		for _, ev := range evs {
			if s.hasLast {
				occs = append(occs, pairs.PairOccurrence{
					Key: model.NewPairKey(s.lastAct, ev.Activity),
					Occ: pairs.Occurrence{TsA: s.lastTS, TsB: ev.TS},
				})
			}
			s.lastAct, s.lastTS, s.hasLast = ev.Activity, ev.TS, true
		}
	} else {
		for _, ev := range evs {
			s.ext.Add(ev)
		}
		occs = s.ext.Drain()
	}
	return evs, occs
}
