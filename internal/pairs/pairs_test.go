package pairs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"seqlog/internal/model"
)

// trace builds a model trace from a compact string: each byte is an activity
// (interned per byte) and the timestamp is the 1-based position, matching the
// convention of the paper's Table 3 worked example.
func trace(s string) []model.TraceEvent {
	evs := make([]model.TraceEvent, len(s))
	for i, c := range []byte(s) {
		evs[i] = model.TraceEvent{Activity: model.ActivityID(c), TS: model.Timestamp(i + 1)}
	}
	return evs
}

func key(a, b byte) model.PairKey {
	return model.NewPairKey(model.ActivityID(a), model.ActivityID(b))
}

func occs(ts ...model.Timestamp) []Occurrence {
	out := make([]Occurrence, 0, len(ts)/2)
	for i := 0; i+1 < len(ts); i += 2 {
		out = append(out, Occurrence{TsA: ts[i], TsB: ts[i+1]})
	}
	return out
}

var stnmMethods = []Method{Parsing, Indexing, State}

// TestTable3 reproduces the paper's Table 3 worked example exactly: trace
// <(A,1),(A,2),(B,3),(A,4),(B,5),(A,6)> under both policies.
func TestTable3(t *testing.T) {
	evs := trace("AABABA")

	wantSC := Result{
		key('A', 'A'): occs(1, 2),
		key('A', 'B'): occs(2, 3, 4, 5),
		key('B', 'A'): occs(3, 4, 5, 6),
	}
	if got := ExtractSC(evs); !Equal(got, wantSC) {
		t.Fatalf("SC mismatch:\ngot  %v\nwant %v", got, wantSC)
	}

	wantSTNM := Result{
		key('A', 'A'): occs(1, 2, 4, 6),
		key('B', 'A'): occs(3, 4, 5, 6),
		key('B', 'B'): occs(3, 5),
		key('A', 'B'): occs(1, 3, 4, 5),
	}
	for _, m := range stnmMethods {
		if got := ExtractSTNM(evs, m); !Equal(got, wantSTNM) {
			t.Fatalf("%v mismatch:\ngot  %v\nwant %v", m, got, wantSTNM)
		}
	}
	if got := ExtractReference(evs); !Equal(got, wantSTNM) {
		t.Fatalf("reference mismatch:\ngot  %v\nwant %v", got, wantSTNM)
	}
}

// TestPaperIntroExample checks the paper's §2.1 AAB example: in <AAABAACB>,
// STNM pair joins rely on (A,A) and (A,B); verify the pair sets directly.
func TestPaperIntroExample(t *testing.T) {
	evs := trace("AAABAACB")
	want := Result{
		key('A', 'A'): occs(1, 2, 3, 5),
		key('A', 'B'): occs(1, 4, 5, 8),
		key('A', 'C'): occs(1, 7),
		key('B', 'A'): occs(4, 5),
		key('B', 'C'): occs(4, 7),
		key('B', 'B'): occs(4, 8),
		key('C', 'B'): occs(7, 8),
	}
	for _, m := range stnmMethods {
		if got := ExtractSTNM(evs, m); !Equal(got, want) {
			t.Fatalf("%v mismatch:\ngot  %v\nwant %v", m, got, want)
		}
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	for _, m := range stnmMethods {
		if got := ExtractSTNM(nil, m); len(got) != 0 {
			t.Fatalf("%v on empty trace: %v", m, got)
		}
		if got := ExtractSTNM(trace("A"), m); len(got) != 0 {
			t.Fatalf("%v on singleton: %v", m, got)
		}
	}
	if got := ExtractSC(trace("A")); len(got) != 0 {
		t.Fatalf("SC on singleton: %v", got)
	}
}

func TestTwoEvents(t *testing.T) {
	want := Result{key('A', 'B'): occs(1, 2)}
	if got := ExtractSC(trace("AB")); !Equal(got, want) {
		t.Fatalf("SC: %v", got)
	}
	for _, m := range stnmMethods {
		if got := ExtractSTNM(trace("AB"), m); !Equal(got, want) {
			t.Fatalf("%v: %v", m, got)
		}
	}
}

func TestAllSameActivity(t *testing.T) {
	// AAAA: self pairs (1,2),(3,4) under both policies... SC pairs are
	// (1,2),(2,3),(3,4) since consecutive pairs may share events.
	evs := trace("AAAA")
	wantSC := Result{key('A', 'A'): occs(1, 2, 2, 3, 3, 4)}
	if got := ExtractSC(evs); !Equal(got, wantSC) {
		t.Fatalf("SC: %v", got)
	}
	wantSTNM := Result{key('A', 'A'): occs(1, 2, 3, 4)}
	for _, m := range stnmMethods {
		if got := ExtractSTNM(evs, m); !Equal(got, wantSTNM) {
			t.Fatalf("%v: %v", m, got)
		}
	}
}

func TestSCDoesNotBridgeGaps(t *testing.T) {
	// ABA: SC has no (B,B), and (A,A) never occurs.
	got := ExtractSC(trace("ABA"))
	if _, ok := got[key('A', 'A')]; ok {
		t.Fatal("SC bridged a gap for (A,A)")
	}
	want := Result{key('A', 'B'): occs(1, 2), key('B', 'A'): occs(2, 3)}
	if !Equal(got, want) {
		t.Fatalf("SC: %v", got)
	}
}

func TestNoOverlapInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		evs := randomTrace(rng, 2+rng.Intn(6), 1+rng.Intn(60))
		for _, m := range stnmMethods {
			res := ExtractSTNM(evs, m)
			for k, occ := range res {
				for i := range occ {
					if occ[i].TsA >= occ[i].TsB {
						t.Fatalf("%v pair %v: TsA %d >= TsB %d", m, k, occ[i].TsA, occ[i].TsB)
					}
					if i > 0 && occ[i].TsA <= occ[i-1].TsB {
						t.Fatalf("%v pair %v overlaps: %v", m, k, occ)
					}
				}
			}
		}
	}
}

func randomTrace(rng *rand.Rand, alphabet, n int) []model.TraceEvent {
	evs := make([]model.TraceEvent, n)
	for i := range evs {
		evs[i] = model.TraceEvent{
			Activity: model.ActivityID(rng.Intn(alphabet)),
			TS:       model.Timestamp(i + 1),
		}
	}
	return evs
}

// TestMethodsAgreeProperty is the core property test: on random traces all
// three STNM flavors agree with each other and with the naive reference.
func TestMethodsAgreeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 500; iter++ {
		alphabet := 1 + rng.Intn(8)
		n := rng.Intn(80)
		evs := randomTrace(rng, alphabet, n)
		want := ExtractReference(evs)
		for _, m := range stnmMethods {
			got := ExtractSTNM(evs, m)
			if !Equal(got, want) {
				t.Fatalf("iter %d (alphabet=%d n=%d): %v disagrees with reference\ntrace: %v\ngot:  %v\nwant: %v",
					iter, alphabet, n, m, evs, got, want)
			}
		}
	}
}

// TestMethodsAgreeLargeAlphabet stresses the regime l ≈ n where the paper
// says Parsing should be preferred over Indexing.
func TestMethodsAgreeLargeAlphabet(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 50; iter++ {
		evs := randomTrace(rng, 100, 120)
		want := ExtractReference(evs)
		for _, m := range stnmMethods {
			if got := ExtractSTNM(evs, m); !Equal(got, want) {
				t.Fatalf("iter %d: %v disagrees with reference", iter, m)
			}
		}
	}
}

// TestStateIsIncremental verifies the key selling point of the State method:
// folding a prefix, finalizing, folding the rest and finalizing again yields
// the same result as a single batch fold.
func TestStateIsIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 100; iter++ {
		evs := randomTrace(rng, 1+rng.Intn(5), 2+rng.Intn(60))
		cut := rng.Intn(len(evs))

		s := NewStateExtractor()
		for _, ev := range evs[:cut] {
			s.Add(ev)
		}
		_ = s.Finalize() // mid-stream snapshot must not disturb the state
		for _, ev := range evs[cut:] {
			s.Add(ev)
		}
		got := s.Finalize()
		want := ExtractReference(evs)
		if !Equal(got, want) {
			t.Fatalf("iter %d: incremental state diverged\ngot  %v\nwant %v", iter, got, want)
		}
	}
}

func TestSCOccurrenceCount(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 100; iter++ {
		n := rng.Intn(50)
		evs := randomTrace(rng, 1+rng.Intn(5), n)
		res := ExtractSC(evs)
		want := 0
		if n > 1 {
			want = n - 1
		}
		if got := NumOccurrences(res); got != want {
			t.Fatalf("SC occurrence count = %d, want %d", got, want)
		}
	}
}

func TestExtractDispatch(t *testing.T) {
	evs := trace("AAB")
	if !Equal(Extract(evs, model.SC, Indexing), ExtractSC(evs)) {
		t.Fatal("Extract(SC) != ExtractSC")
	}
	if !Equal(Extract(evs, model.STNM, State), ExtractSTNM(evs, State)) {
		t.Fatal("Extract(STNM) != ExtractSTNM")
	}
}

func TestEqual(t *testing.T) {
	a := Result{key('A', 'B'): occs(1, 2)}
	b := Result{key('A', 'B'): occs(1, 2)}
	if !Equal(a, b) {
		t.Fatal("identical results reported unequal")
	}
	c := Result{key('A', 'B'): occs(1, 3)}
	if Equal(a, c) {
		t.Fatal("different occurrences reported equal")
	}
	d := Result{key('A', 'C'): occs(1, 2)}
	if Equal(a, d) {
		t.Fatal("different keys reported equal")
	}
	if Equal(a, Result{}) {
		t.Fatal("different sizes reported equal")
	}
}

func TestMethodString(t *testing.T) {
	if Parsing.String() != "Parsing" || Indexing.String() != "Indexing" || State.String() != "State" {
		t.Fatal("method names wrong")
	}
	if Method(9).String() != "Method(?)" {
		t.Fatal("unknown method should still render")
	}
}

func BenchmarkExtract(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	evs := randomTrace(rng, 50, 1000)
	b.Run("SC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ExtractSC(evs)
		}
	})
	for _, m := range stnmMethods {
		b.Run("STNM-"+m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ExtractSTNM(evs, m)
			}
		})
	}
}

// TestQuickMethodsAgree drives the flavor-agreement property through
// testing/quick's input generation (complementing the seeded loops above).
func TestQuickMethodsAgree(t *testing.T) {
	f := func(raw []uint8) bool {
		evs := make([]model.TraceEvent, len(raw))
		for i, b := range raw {
			evs[i] = model.TraceEvent{
				Activity: model.ActivityID(b % 6),
				TS:       model.Timestamp(i + 1),
			}
		}
		want := ExtractReference(evs)
		return Equal(ExtractSTNM(evs, Parsing), want) &&
			Equal(ExtractSTNM(evs, Indexing), want) &&
			Equal(ExtractSTNM(evs, State), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDrainMatchesFinalize: the streaming completion feed is exactly the
// batch result. Drains taken at arbitrary chunk boundaries, concatenated,
// must carry the same occurrences (per pair, in TsB order) as one Finalize of
// the whole trace — this is what lets the ingestion pipeline flush only-new
// occurrences per micro-batch.
func TestDrainMatchesFinalize(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for iter := 0; iter < 200; iter++ {
		evs := randomTrace(rng, 1+rng.Intn(6), rng.Intn(90))

		s := NewStreamingStateExtractor()
		got := make(Result)
		for i, ev := range evs {
			s.Add(ev)
			if rng.Intn(4) == 0 || i == len(evs)-1 {
				for _, po := range s.Drain() {
					got[po.Key] = append(got[po.Key], po.Occ)
				}
			}
		}
		if rest := s.Drain(); len(rest) != 0 {
			t.Fatalf("iter %d: second Drain not empty: %v", iter, rest)
		}
		want := ExtractReference(evs)
		if !Equal(got, want) {
			t.Fatalf("iter %d: drained occurrences diverge from batch result\ntrace: %v\ngot:  %v\nwant: %v",
				iter, evs, got, want)
		}
	}
}

// TestDrainOffByDefault: batch extractors pay nothing and report nothing.
func TestDrainOffByDefault(t *testing.T) {
	s := NewStateExtractor()
	for _, ev := range trace("abab") {
		s.Add(ev)
	}
	if got := s.Drain(); got != nil {
		t.Fatalf("Drain on a batch extractor returned %v, want nil", got)
	}
	if n := NumOccurrences(s.Finalize()); n == 0 {
		t.Fatal("Finalize lost occurrences")
	}
}
