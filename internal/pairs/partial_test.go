package pairs

import (
	"math/rand"
	"testing"

	"seqlog/internal/model"
)

// tiedTrace builds a trace where each inner slice is a set of concurrent
// events (same timestamp).
func tiedTrace(groups ...[]byte) []model.TraceEvent {
	var evs []model.TraceEvent
	for g, set := range groups {
		for _, c := range set {
			evs = append(evs, model.TraceEvent{Activity: model.ActivityID(c), TS: model.Timestamp(g + 1)})
		}
	}
	return evs
}

func TestPartialConcurrentEventsNeverPair(t *testing.T) {
	// {A, B} concurrent, then C: pairs (A,C) and (B,C) exist, (A,B) and
	// (B,A) do not.
	evs := tiedTrace([]byte{'A', 'B'}, []byte{'C'})
	res := ExtractSTNMPartial(evs)
	if _, ok := res[key('A', 'B')]; ok {
		t.Fatalf("concurrent events paired: %v", res)
	}
	if _, ok := res[key('B', 'A')]; ok {
		t.Fatalf("concurrent events paired: %v", res)
	}
	if got := res[key('A', 'C')]; len(got) != 1 || got[0] != (Occurrence{TsA: 1, TsB: 2}) {
		t.Fatalf("(A,C) = %v", got)
	}
	if got := res[key('B', 'C')]; len(got) != 1 {
		t.Fatalf("(B,C) = %v", got)
	}
}

func TestPartialSelfPairNeedsDistinctTimes(t *testing.T) {
	// Two concurrent As never self-pair; an A later does.
	evs := tiedTrace([]byte{'A', 'A'}, []byte{'A'})
	res := ExtractSTNMPartial(evs)
	got := res[key('A', 'A')]
	if len(got) != 1 || got[0] != (Occurrence{TsA: 1, TsB: 2}) {
		t.Fatalf("(A,A) = %v", got)
	}
}

func TestPartialReducesToTotalOrderWithoutTies(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for iter := 0; iter < 100; iter++ {
		evs := randomTrace(rng, 1+rng.Intn(5), rng.Intn(50))
		want := ExtractReference(evs)
		got := ExtractSTNMPartial(evs)
		if !Equal(got, want) {
			t.Fatalf("iter %d: partial != total on tie-free trace\ngot  %v\nwant %v", iter, got, want)
		}
	}
}

// TestPartialAgreesWithReference: property test with random tie groups.
func TestPartialAgreesWithReference(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for iter := 0; iter < 200; iter++ {
		var evs []model.TraceEvent
		ts := model.Timestamp(0)
		n := rng.Intn(50)
		for i := 0; i < n; i++ {
			if i == 0 || rng.Float64() < 0.7 {
				ts++ // new time point; otherwise stay concurrent
			}
			evs = append(evs, model.TraceEvent{
				Activity: model.ActivityID(rng.Intn(4)),
				TS:       ts,
			})
		}
		want := ExtractReferencePartial(evs)
		got := ExtractSTNMPartial(evs)
		if !Equal(got, want) {
			t.Fatalf("iter %d: mismatch\ntrace %v\ngot  %v\nwant %v", iter, evs, got, want)
		}
	}
}

func TestMatchTracePartial(t *testing.T) {
	// {A,B} | {B} | {C}: pattern ABC must use the second B.
	evs := tiedTrace([]byte{'A', 'B'}, []byte{'B'}, []byte{'C'})
	got := MatchTracePartial(evs, model.Pattern{
		model.ActivityID('A'), model.ActivityID('B'), model.ActivityID('C'),
	})
	if len(got) != 1 || got[0][0] != 1 || got[0][1] != 2 || got[0][2] != 3 {
		t.Fatalf("partial match = %v", got)
	}
	// Pattern AB over only-concurrent {A,B}: no match.
	got = MatchTracePartial(tiedTrace([]byte{'A', 'B'}), model.Pattern{
		model.ActivityID('A'), model.ActivityID('B'),
	})
	if len(got) != 0 {
		t.Fatalf("concurrent events matched sequentially: %v", got)
	}
	if MatchTracePartial(evs, nil) != nil {
		t.Fatal("empty pattern matched")
	}
}

func TestMatchTracePartialNonOverlap(t *testing.T) {
	// A B A B without ties: two matches of AB.
	evs := trace("ABAB")
	got := MatchTracePartial(evs, model.Pattern{model.ActivityID('A'), model.ActivityID('B')})
	if len(got) != 2 {
		t.Fatalf("matches = %v", got)
	}
}
