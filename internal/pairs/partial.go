package pairs

import (
	"sort"

	"seqlog/internal/model"
)

// This file implements the partial-order extension of §7 of the paper: "in
// many cases, assuming a total ordering is restrictive ... e.g., in
// predictive maintenance it is common to group events in large sets
// ignoring their relative order". Events of one trace that carry the same
// timestamp are treated as concurrent: a pair (a, b) occurs only when a is
// *strictly* before b, and concurrent events never pair with each other.
//
// Only STNM is meaningful here — strict contiguity presupposes a total
// order — and the greedy non-overlap rule generalises naturally: match the
// earliest a strictly after the previous occurrence's b, then the earliest
// b strictly after that a.

// ExtractSTNMPartial extracts skip-till-next-match pairs under partial
// order. Events must be sorted by timestamp; ties denote concurrency.
func ExtractSTNMPartial(events []model.TraceEvent) Result {
	positions := make(map[model.ActivityID][]int32)
	for i, ev := range events {
		positions[ev.Activity] = append(positions[ev.Activity], int32(i))
	}
	types := make([]model.ActivityID, 0, len(positions))
	for a := range positions {
		types = append(types, a)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })

	res := make(Result)
	for _, a := range types {
		la := positions[a]
		for _, b := range types {
			occ := mergePartial(events, la, positions[b])
			if len(occ) > 0 {
				res[model.NewPairKey(a, b)] = occ
			}
		}
	}
	return res
}

// mergePartial is the timestamp-strict variant of the position merge: the
// next a must have ts strictly greater than the previous match's b, and the
// next b strictly greater than that a — so concurrent events (equal ts)
// never form or chain a pair.
func mergePartial(events []model.TraceEvent, la, lb []int32) []Occurrence {
	var out []Occurrence
	last := model.Timestamp(-1 << 62)
	i, j := 0, 0
	for {
		for i < len(la) && events[la[i]].TS <= last {
			i++
		}
		if i == len(la) {
			break
		}
		aTS := events[la[i]].TS
		for j < len(lb) && events[lb[j]].TS <= aTS {
			j++
		}
		if j == len(lb) {
			break
		}
		bTS := events[lb[j]].TS
		out = append(out, Occurrence{TsA: aTS, TsB: bTS})
		last = bTS
	}
	return out
}

// ExtractReferencePartial is the oblivious reference for the tests: per
// pair, greedy matching directly on the event slice with strict timestamp
// comparisons.
func ExtractReferencePartial(events []model.TraceEvent) Result {
	present := make(map[model.ActivityID]bool)
	var types []model.ActivityID
	for _, ev := range events {
		if !present[ev.Activity] {
			present[ev.Activity] = true
			types = append(types, ev.Activity)
		}
	}
	res := make(Result)
	for _, a := range types {
		for _, b := range types {
			var occ []Occurrence
			last := model.Timestamp(-1 << 62)
			for {
				ai := -1
				for i, ev := range events {
					if ev.Activity == a && ev.TS > last {
						ai = i
						break
					}
				}
				if ai < 0 {
					break
				}
				bi := -1
				for i, ev := range events {
					if ev.Activity == b && ev.TS > events[ai].TS {
						bi = i
						break
					}
				}
				if bi < 0 {
					break
				}
				occ = append(occ, Occurrence{TsA: events[ai].TS, TsB: events[bi].TS})
				last = events[bi].TS
			}
			if len(occ) > 0 {
				res[model.NewPairKey(a, b)] = occ
			}
		}
	}
	return res
}

// MatchTracePartial matches a whole pattern greedily under partial order:
// each pattern step must advance strictly in time. It is the scan reference
// for partially ordered detection.
func MatchTracePartial(events []model.TraceEvent, p model.Pattern) [][]model.Timestamp {
	if len(p) == 0 {
		return nil
	}
	var out [][]model.Timestamp
	ts := make([]model.Timestamp, 0, len(p))
	j := 0
	prev := model.Timestamp(-1 << 62)
	for _, ev := range events {
		if ev.Activity == p[j] && ev.TS > prev {
			ts = append(ts, ev.TS)
			prev = ev.TS
			j++
			if j == len(p) {
				out = append(out, append([]model.Timestamp(nil), ts...))
				ts, j = ts[:0], 0
				// Non-overlap: the next match starts strictly after
				// this one's completion; prev already holds it.
			}
		}
	}
	return out
}
