package pairs

import (
	"math/rand"
	"sort"
	"testing"

	"seqlog/internal/model"
)

// Property tests over seeded random logs for the equivalences the system
// leans on: the paper asserts its three STNM extraction flavors (Parsing,
// Indexing, State) compute the same pair sets, the streaming pipeline
// additionally relies on the State extractor emitting exactly those pairs
// incrementally through Drain, and Algorithm 1's batch dedup relies on
// extraction being prefix-stable (indexing a prefix never changes the
// occurrences a longer run of the same trace produces).

// randomLogTraces generates a seeded multi-trace log: each trace gets its
// own length, alphabet skew and timestamp gaps, strictly increasing per
// trace (the order the builder normalises to).
func randomLogTraces(rng *rand.Rand, traces int) [][]model.TraceEvent {
	out := make([][]model.TraceEvent, traces)
	for t := range out {
		alphabet := 2 + rng.Intn(7)
		n := 1 + rng.Intn(60)
		ts := model.Timestamp(rng.Intn(100))
		evs := make([]model.TraceEvent, n)
		for i := range evs {
			ts += model.Timestamp(1 + rng.Intn(9))
			evs[i] = model.TraceEvent{Activity: model.ActivityID(rng.Intn(alphabet)), TS: ts}
		}
		out[t] = evs
	}
	return out
}

// TestExtractorsAgreeOnRandomLogs: for every trace of seeded random logs the
// three STNM flavors and the oblivious reference produce identical results.
func TestExtractorsAgreeOnRandomLogs(t *testing.T) {
	for _, seed := range []int64{1, 23, 456, 7890} {
		rng := rand.New(rand.NewSource(seed))
		for ti, evs := range randomLogTraces(rng, 25) {
			ref := ExtractReference(evs)
			for _, m := range []Method{Parsing, Indexing, State} {
				if got := ExtractSTNM(evs, m); !Equal(got, ref) {
					t.Fatalf("seed %d trace %d: %v diverges from reference\nevents: %v\ngot: %v\nwant: %v",
						seed, ti, m, evs, got, ref)
				}
			}
		}
	}
}

// TestIncrementalDrainMatchesBatch: feeding a trace to the streaming State
// extractor in random chunks and draining between chunks yields exactly the
// batch result of every flavor — in completion order, which is the order the
// Index table appends in.
func TestIncrementalDrainMatchesBatch(t *testing.T) {
	for _, seed := range []int64{3, 77, 1234} {
		rng := rand.New(rand.NewSource(seed))
		for ti, evs := range randomLogTraces(rng, 20) {
			s := NewStreamingStateExtractor()
			got := make(Result)
			var lastTsB model.Timestamp
			i := 0
			for i < len(evs) {
				chunk := 1 + rng.Intn(5)
				for j := 0; j < chunk && i < len(evs); j, i = j+1, i+1 {
					s.Add(evs[i])
				}
				for _, po := range s.Drain() {
					if po.Occ.TsB < lastTsB {
						t.Fatalf("seed %d trace %d: drained out of completion order (%d after %d)",
							seed, ti, po.Occ.TsB, lastTsB)
					}
					lastTsB = po.Occ.TsB
					got[po.Key] = append(got[po.Key], po.Occ)
				}
			}
			if rest := s.Drain(); len(rest) != 0 {
				t.Fatalf("seed %d trace %d: second drain not empty: %v", seed, ti, rest)
			}
			for _, m := range []Method{Parsing, Indexing, State} {
				if want := ExtractSTNM(evs, m); !Equal(got, want) {
					t.Fatalf("seed %d trace %d: incremental drains diverge from batch %v\ngot: %v\nwant: %v",
						seed, ti, m, got, want)
				}
			}
			if fin := s.Finalize(); !Equal(got, fin) {
				t.Fatalf("seed %d trace %d: drains diverge from Finalize\ngot: %v\nfin: %v", seed, ti, got, fin)
			}
		}
	}
}

// TestExtractionIsPrefixStable: extracting a prefix yields a prefix of the
// full trace's occurrence lists, and the occurrences completing after the
// prefix boundary are exactly the full-minus-prefix remainder. This is the
// property that lets Algorithm 1 dedup re-extracted pairs with one watermark
// per trace (see Builder.Update).
func TestExtractionIsPrefixStable(t *testing.T) {
	for _, seed := range []int64{11, 222} {
		rng := rand.New(rand.NewSource(seed))
		for ti, evs := range randomLogTraces(rng, 15) {
			if len(evs) < 2 {
				continue
			}
			cut := 1 + rng.Intn(len(evs)-1)
			boundary := evs[cut-1].TS
			for _, m := range []Method{Parsing, Indexing, State} {
				full := ExtractSTNM(evs, m)
				prefix := ExtractSTNM(evs[:cut], m)
				// Rebuild the full result as prefix + post-boundary tail.
				rebuilt := make(Result, len(full))
				for k, occ := range prefix {
					rebuilt[k] = append([]Occurrence(nil), occ...)
				}
				for k, occ := range full {
					lo := sort.Search(len(occ), func(i int) bool { return occ[i].TsB > boundary })
					if lo < len(occ) {
						rebuilt[k] = append(rebuilt[k], occ[lo:]...)
					}
				}
				if !Equal(rebuilt, full) {
					t.Fatalf("seed %d trace %d cut %d: %v is not prefix-stable\nprefix: %v\nfull: %v",
						seed, ti, cut, m, prefix, full)
				}
			}
		}
	}
}
