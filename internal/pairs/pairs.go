// Package pairs implements the event-pair extraction algorithms of §4 of the
// paper: the strict-contiguity scan (§4.1) and the three skip-till-next-match
// flavors — Parsing (Algorithm 6), Indexing, and State (Algorithm 8).
//
// Ground truth for STNM is Table 3 of the paper: for every ordered pair of
// event types (a, b) — including a == b — the trace is matched greedily and
// without overlaps: find the next a after the previous pair's b, then the
// next b after that a. All three flavors must produce identical pair sets;
// the property tests enforce mutual agreement and agreement with an
// intentionally naive reference implementation.
package pairs

import (
	"sort"

	"seqlog/internal/model"
)

// Occurrence is one completion of an event-type pair inside a trace: the
// timestamps of the first and second matched events.
type Occurrence struct {
	TsA model.Timestamp
	TsB model.Timestamp
}

// Result maps each event-type pair to its occurrences within a single trace,
// ordered by completion time (TsB ascending). It is the trace-local slice of
// the paper's inverted Index table.
type Result map[model.PairKey][]Occurrence

// Method selects one of the STNM extraction flavors of §4.2.
type Method uint8

const (
	// Parsing computes pairs while scanning through the sequence once per
	// distinct first-event type (Algorithm 6).
	Parsing Method = iota
	// Indexing first records the positions of each distinct event type
	// and then merges position lists per pair.
	Indexing
	// State folds the sequence event-by-event into a hash map keyed by
	// pair, appending timestamps under the odd/even rule (Algorithm 8).
	State
)

// String returns the paper's name for the method.
func (m Method) String() string {
	switch m {
	case Parsing:
		return "Parsing"
	case Indexing:
		return "Indexing"
	case State:
		return "State"
	default:
		return "Method(?)"
	}
}

// ExtractSC implements §4.1: every pair of consecutive trace events is an
// occurrence. Complexity O(n) for a trace of n events.
func ExtractSC(events []model.TraceEvent) Result {
	res := make(Result, len(events))
	for i := 0; i+1 < len(events); i++ {
		k := model.NewPairKey(events[i].Activity, events[i+1].Activity)
		res[k] = append(res[k], Occurrence{TsA: events[i].TS, TsB: events[i+1].TS})
	}
	return res
}

// ExtractSTNM extracts skip-till-next-match pairs with the chosen flavor.
func ExtractSTNM(events []model.TraceEvent, m Method) Result {
	switch m {
	case Parsing:
		return extractParsing(events)
	case Indexing:
		return extractIndexing(events)
	case State:
		return extractState(events)
	default:
		return extractIndexing(events)
	}
}

// Extract dispatches on policy: SC uses the contiguous scan, STNM uses the
// given method. STAM is not indexable with non-overlapping pairs and is only
// served by the sase substrate.
func Extract(events []model.TraceEvent, policy model.Policy, m Method) Result {
	if policy == model.SC {
		return ExtractSC(events)
	}
	return ExtractSTNM(events, m)
}

// extractParsing is the Parsing method (Algorithm 6): one scan of the trace
// per distinct first-event type a, starting at a's first occurrence. While
// scanning, each second type b is in one of three states: unseen (its first
// pair will start at a's first occurrence), open (an a has been assigned,
// waiting for the next b), or waiting (its previous pair completed; it needs
// a fresh a, and the next a event in the scan is by construction the
// earliest admissible one).
func extractParsing(events []model.TraceEvent) Result {
	res := make(Result)
	n := len(events)
	checked := make(map[model.ActivityID]bool)

	for i0 := 0; i0 < n; i0++ {
		a := events[i0].Activity
		if checked[a] {
			continue
		}
		checked[a] = true
		firstA := events[i0].TS

		open := make(map[model.ActivityID]model.Timestamp) // b -> assigned a timestamp
		var waiting []model.ActivityID                     // bs whose next pair needs a fresh a
		inWaiting := make(map[model.ActivityID]bool)
		seen := make(map[model.ActivityID]bool) // bs encountered in this scan
		selfOpen, selfHas := firstA, true       // the first a opens the (a,a) pair

		for j := i0 + 1; j < n; j++ {
			ev := events[j]
			if ev.Activity == a {
				// Close or open the self pair.
				if selfHas {
					k := model.NewPairKey(a, a)
					res[k] = append(res[k], Occurrence{TsA: selfOpen, TsB: ev.TS})
					selfHas = false
				} else {
					selfOpen, selfHas = ev.TS, true
				}
				// Every waiting b gets this a as its next first event.
				for _, b := range waiting {
					open[b] = ev.TS
					inWaiting[b] = false
				}
				waiting = waiting[:0]
				continue
			}
			b := ev.Activity
			if ts, ok := open[b]; ok {
				k := model.NewPairKey(a, b)
				res[k] = append(res[k], Occurrence{TsA: ts, TsB: ev.TS})
				delete(open, b)
				if !inWaiting[b] {
					waiting = append(waiting, b)
					inWaiting[b] = true
				}
				continue
			}
			if !seen[b] {
				// First b in the scan: pairs with the first a of the trace.
				seen[b] = true
				k := model.NewPairKey(a, b)
				res[k] = append(res[k], Occurrence{TsA: firstA, TsB: ev.TS})
				if !inWaiting[b] {
					waiting = append(waiting, b)
					inWaiting[b] = true
				}
			}
			// Otherwise b is waiting for a fresh a: skip (the
			// "not in inter_events" branch of Algorithm 6).
		}
	}
	return res
}

// extractIndexing is the Indexing method: one pass records the positions of
// every distinct event type; then, for every ordered type pair, the two
// position lists are merged under the non-overlap constraint. Complexity
// O(n·l²) worst case as analysed in the paper, O(n + pairs) in practice.
//
// The merges run in two passes — count, then fill into one arena — so the
// method performs a constant number of allocations per trace regardless of
// how many of the l² pairs occur. This is what keeps Indexing ahead of the
// other flavors on the random logs of Figure 3, as in the paper.
func extractIndexing(events []model.TraceEvent) Result {
	positions := make(map[model.ActivityID][]int32)
	for i, ev := range events {
		positions[ev.Activity] = append(positions[ev.Activity], int32(i))
	}
	types := make([]model.ActivityID, 0, len(positions))
	for a := range positions {
		types = append(types, a)
	}
	// Deterministic iteration keeps results reproducible across runs.
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })

	// Pass 1: count matches per pair.
	counts := make([]int, len(types)*len(types))
	total := 0
	for ai, a := range types {
		la := positions[a]
		for bi, b := range types {
			c := mergeCount(la, positions[b])
			counts[ai*len(types)+bi] = c
			total += c
		}
	}

	// Pass 2: fill one shared arena and slice it per pair.
	arena := make([]Occurrence, 0, total)
	res := make(Result, total)
	for ai, a := range types {
		la := positions[a]
		for bi, b := range types {
			c := counts[ai*len(types)+bi]
			if c == 0 {
				continue
			}
			start := len(arena)
			arena = mergeFill(arena, events, la, positions[b])
			res[model.NewPairKey(a, b)] = arena[start : start+c : start+c]
		}
	}
	return res
}

// mergeCount counts the greedy non-overlapping matches of two ascending
// position lists: repeatedly the first a-position after the previous match's
// end, then the first b-position strictly after it. It works unchanged when
// both lists are the same slice (self pairs).
func mergeCount(la, lb []int32) int {
	n := 0
	last := int32(-1)
	i, j := 0, 0
	for {
		for i < len(la) && la[i] <= last {
			i++
		}
		if i == len(la) {
			break
		}
		apos := la[i]
		for j < len(lb) && lb[j] <= apos {
			j++
		}
		if j == len(lb) {
			break
		}
		n++
		last = lb[j]
	}
	return n
}

// mergeFill repeats the merge of mergeCount, appending the matched
// timestamp pairs to arena.
func mergeFill(arena []Occurrence, events []model.TraceEvent, la, lb []int32) []Occurrence {
	last := int32(-1)
	i, j := 0, 0
	for {
		for i < len(la) && la[i] <= last {
			i++
		}
		if i == len(la) {
			break
		}
		apos := la[i]
		for j < len(lb) && lb[j] <= apos {
			j++
		}
		if j == len(lb) {
			break
		}
		bpos := lb[j]
		arena = append(arena, Occurrence{TsA: events[apos].TS, TsB: events[bpos].TS})
		last = bpos
	}
	return arena
}

// StateExtractor is the State method (Algorithm 8) exposed as a streaming
// fold: events are added one at a time and the pair lists grow under the
// odd/even rule, so a partially observed trace can be saved and resumed —
// the property the paper argues makes State preferable in fully dynamic
// environments. Finalize trims unmatched opens and yields the Result.
type StateExtractor struct {
	lists map[model.PairKey][]model.Timestamp
	seen  []model.ActivityID
	first map[model.ActivityID]model.Timestamp

	// Streaming mode (NewStreamingStateExtractor): every pair completion is
	// also recorded into fresh at the moment its list reaches even length,
	// so Drain can hand out only-new occurrences without an O(all pairs)
	// Finalize sweep per micro-batch.
	track bool
	fresh []PairOccurrence
}

// PairOccurrence is one pair completion tagged with its pair key — the unit
// Drain reports to the ingestion pipeline.
type PairOccurrence struct {
	Key model.PairKey
	Occ Occurrence
}

// NewStateExtractor returns an empty extractor.
func NewStateExtractor() *StateExtractor {
	return &StateExtractor{
		lists: make(map[model.PairKey][]model.Timestamp),
		first: make(map[model.ActivityID]model.Timestamp),
	}
}

// NewStreamingStateExtractor returns an extractor that additionally records
// each completion as it happens, for retrieval via Drain. Batch callers use
// NewStateExtractor and pay nothing for the bookkeeping.
func NewStreamingStateExtractor() *StateExtractor {
	s := NewStateExtractor()
	s.track = true
	return s
}

// Add folds one event into the state: for every known type x, the entry
// (e, x) is extended when its list has even length (e opens a pair) and the
// entry (x, e) when odd (e closes a pair). Self pairs receive a single
// parity-guided append — the published rule would append the same event
// twice (see DESIGN.md).
//
// The paper initialises the hash map with all pairs of the trace's distinct
// types before streaming (Algorithm 8, line 1); since a streaming extractor
// cannot look ahead, we instead open (x, e) retroactively at x's first
// occurrence when a brand-new type e appears — exactly the entry the eager
// initialisation would have produced by that point.
func (s *StateExtractor) Add(ev model.TraceEvent) {
	e, ts := ev.Activity, ev.TS
	if _, known := s.first[e]; !known {
		for _, x := range s.seen {
			// Retroactive open: (x, e) was empty, so this never completes.
			k := model.NewPairKey(x, e)
			s.lists[k] = append(s.lists[k], s.first[x])
		}
		s.first[e] = ts
		s.seen = append(s.seen, e)
	}
	for _, x := range s.seen {
		if x == e {
			// Self pair: alternate open/close.
			s.push(model.NewPairKey(e, e), ts)
			continue
		}
		// e as first event of (e, x): open when balanced.
		k1 := model.NewPairKey(e, x)
		if len(s.lists[k1])%2 == 0 {
			s.lists[k1] = append(s.lists[k1], ts)
		}
		// e as second event of (x, e): close when open.
		k2 := model.NewPairKey(x, e)
		if len(s.lists[k2])%2 == 1 {
			s.push(k2, ts)
		}
	}
}

// push appends ts to the pair's list and, in streaming mode, records the
// completion when the append balances the list.
func (s *StateExtractor) push(k model.PairKey, ts model.Timestamp) {
	l := append(s.lists[k], ts)
	s.lists[k] = l
	if s.track && len(l)%2 == 0 {
		s.fresh = append(s.fresh, PairOccurrence{
			Key: k,
			Occ: Occurrence{TsA: l[len(l)-2], TsB: l[len(l)-1]},
		})
	}
}

// Drain returns the completions recorded since the previous Drain (or since
// construction), in completion order — TsB ascending when events are added in
// timestamp order, which is exactly the order the Index table appends in.
// It returns nil outside streaming mode. The returned slice is owned by the
// caller.
func (s *StateExtractor) Drain() []PairOccurrence {
	out := s.fresh
	s.fresh = nil
	return out
}

// Finalize trims odd-length lists and converts them into occurrences. The
// extractor remains usable; Finalize may be called repeatedly as more events
// stream in (open pairs are simply not reported yet).
func (s *StateExtractor) Finalize() Result {
	res := make(Result, len(s.lists))
	for k, ts := range s.lists {
		n := len(ts) &^ 1 // drop an unmatched trailing open
		if n == 0 {
			continue
		}
		occ := make([]Occurrence, 0, n/2)
		for i := 0; i < n; i += 2 {
			occ = append(occ, Occurrence{TsA: ts[i], TsB: ts[i+1]})
		}
		res[k] = occ
	}
	return res
}

func extractState(events []model.TraceEvent) Result {
	s := NewStateExtractor()
	for _, ev := range events {
		s.Add(ev)
	}
	return s.Finalize()
}

// ExtractReference is the oblivious reference used by the tests: for every
// ordered pair of types present in the trace it replays the greedy
// non-overlapping match directly on the event slice. O(l²·n); correct by
// construction against the Table 3 semantics.
func ExtractReference(events []model.TraceEvent) Result {
	present := make(map[model.ActivityID]bool)
	var types []model.ActivityID
	for _, ev := range events {
		if !present[ev.Activity] {
			present[ev.Activity] = true
			types = append(types, ev.Activity)
		}
	}
	res := make(Result)
	for _, a := range types {
		for _, b := range types {
			var occ []Occurrence
			i := 0
			for {
				// next a at position >= i
				for i < len(events) && events[i].Activity != a {
					i++
				}
				if i == len(events) {
					break
				}
				apos := i
				j := apos + 1
				for j < len(events) && events[j].Activity != b {
					j++
				}
				if j == len(events) {
					break
				}
				occ = append(occ, Occurrence{TsA: events[apos].TS, TsB: events[j].TS})
				i = j + 1
			}
			if len(occ) > 0 {
				res[model.NewPairKey(a, b)] = occ
			}
		}
	}
	return res
}

// Equal reports whether two results hold exactly the same occurrences.
func Equal(x, y Result) bool {
	if len(x) != len(y) {
		return false
	}
	for k, xs := range x {
		ys, ok := y[k]
		if !ok || len(xs) != len(ys) {
			return false
		}
		for i := range xs {
			if xs[i] != ys[i] {
				return false
			}
		}
	}
	return true
}

// NumOccurrences counts all occurrences in the result.
func NumOccurrences(r Result) int {
	n := 0
	for _, occ := range r {
		n += len(occ)
	}
	return n
}
