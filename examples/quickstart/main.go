// Quickstart: index a handful of shopping sessions in memory, then run the
// three query families of the paper — detection, statistics, continuation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"seqlog"
)

func main() {
	// An engine with the default configuration: in-memory store,
	// skip-till-next-match policy, Indexing extraction flavor.
	eng, err := seqlog.Open(seqlog.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// Five user sessions. Timestamps are milliseconds; any monotone
	// clock works.
	events := []seqlog.Event{
		{Trace: 1, Activity: "search", Time: 0}, {Trace: 1, Activity: "view", Time: 1200},
		{Trace: 1, Activity: "add-to-cart", Time: 4000}, {Trace: 1, Activity: "checkout", Time: 9000},
		{Trace: 2, Activity: "search", Time: 0}, {Trace: 2, Activity: "view", Time: 800},
		{Trace: 2, Activity: "exit", Time: 2000},
		{Trace: 3, Activity: "search", Time: 0}, {Trace: 3, Activity: "search", Time: 3000},
		{Trace: 3, Activity: "view", Time: 4000}, {Trace: 3, Activity: "add-to-cart", Time: 4500},
		{Trace: 3, Activity: "checkout", Time: 20000},
		{Trace: 4, Activity: "view", Time: 0}, {Trace: 4, Activity: "add-to-cart", Time: 500},
		{Trace: 4, Activity: "exit", Time: 1500},
		{Trace: 5, Activity: "search", Time: 0}, {Trace: 5, Activity: "view", Time: 100},
		{Trace: 5, Activity: "view", Time: 900}, {Trace: 5, Activity: "add-to-cart", Time: 1400},
	}
	st, err := eng.Ingest(events)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d events in %d traces (%d pair occurrences)\n\n",
		st.Events, st.Traces, st.Occurrences)

	// Pattern detection (STNM): which sessions searched, then viewed,
	// then eventually checked out — regardless of what happened between?
	pattern := []string{"search", "view", "checkout"}
	matches, err := eng.Detect(pattern)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sessions matching %v:\n", pattern)
	for _, m := range matches {
		fmt.Printf("  session %d, matched at %v (took %dms)\n",
			m.Trace, m.Times, m.Times[len(m.Times)-1]-m.Times[0])
	}

	// Statistics: cheap pairwise figures with pattern-level bounds.
	stats, err := eng.Stats(pattern)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npairwise statistics for %v:\n", pattern)
	for _, ps := range stats.Pairs {
		fmt.Printf("  %s -> %s: %d completions, avg %.0fms\n",
			ps.First, ps.Second, ps.Completions, ps.AvgDuration)
	}
	fmt.Printf("  whole pattern: at most %d completions, est. duration %.0fms\n",
		stats.MaxCompletions, stats.EstimatedDuration)

	// Continuation: what typically happens after search -> view?
	props, err := eng.Explore([]string{"search", "view"}, seqlog.Hybrid, seqlog.ExploreOptions{TopK: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlikely continuations of search -> view:\n")
	for _, p := range props {
		fmt.Printf("  %-12s score=%.4f (completions=%d, avg gap %.0fms)\n",
			p.Activity, p.Score, p.Completions, p.AvgDuration)
	}
}
