// Incidents: incremental daily indexing of a BPI-2013-style incident log.
//
// The paper's architecture is built around periodic batch updates: "new logs
// are appended ... the update procedure is called periodically" (§3.1.3),
// with LastChecked preventing duplicate pairs when a trace spans several
// batches, completed traces pruned from Seq, and the index partitioned per
// period. This example drives all of that against a durable on-disk engine:
// seven daily batches of incident events, one index partition per day,
// pruning of incidents closed the previous day, and a crash-safe reopen.
//
//	go run ./examples/incidents
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"seqlog"
)

// Incident lifecycle activities (the BPI 2013 Volvo IT log has exactly this
// flavour of status transitions).
var steps = []string{"open", "assign", "investigate", "escalate", "resolve", "close"}

type incident struct {
	id     int64
	step   int
	ts     int64
	closed bool
}

func main() {
	dir, err := os.MkdirTemp("", "seqlog-incidents-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	eng, err := seqlog.Open(seqlog.Config{Dir: filepath.Join(dir, "idx"), Policy: "STNM"})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(13))
	var live []*incident
	nextID := int64(1)
	day := int64(24 * 3600 * 1000)

	for d := 1; d <= 7; d++ {
		// Each day: open new incidents, progress existing ones.
		if err := eng.RotatePeriod(fmt.Sprintf("day-%02d", d)); err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			live = append(live, &incident{id: nextID, ts: int64(d) * day})
			nextID++
		}
		var batch []seqlog.Event
		var closedToday []int64
		for _, inc := range live {
			if inc.closed {
				continue
			}
			// 1-3 lifecycle steps per incident per day.
			for s := 0; s < 1+rng.Intn(3) && inc.step < len(steps); s++ {
				inc.ts += 1000 + rng.Int63n(int64(3600*1000))
				batch = append(batch, seqlog.Event{Trace: inc.id, Activity: steps[inc.step], Time: inc.ts})
				// Occasionally bounce back to investigation after escalating.
				if steps[inc.step] == "escalate" && rng.Float64() < 0.3 {
					inc.step = 2
				} else {
					inc.step++
				}
			}
			if inc.step == len(steps) {
				inc.closed = true
				closedToday = append(closedToday, inc.id)
			}
		}
		st, err := eng.Ingest(batch)
		if err != nil {
			log.Fatal(err)
		}
		// Completed traces leave the mutable tables; their history stays
		// in the inverted index.
		if err := eng.PruneTraces(closedToday); err != nil {
			log.Fatal(err)
		}
		open, _ := eng.NumTraces()
		fmt.Printf("day %d: ingested %4d events, closed %3d incidents, %4d still open\n",
			d, st.Events, len(closedToday), open)
	}

	// Simulate a process restart: everything must come back from disk.
	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}
	eng, err = seqlog.Open(seqlog.Config{Dir: filepath.Join(dir, "idx"), Policy: "STNM"})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	fmt.Println("\nreopened index from disk")

	periods, _ := eng.Periods()
	fmt.Printf("index partitions: %v\n\n", periods)

	// How many incidents ever escalated and were still resolved?
	ids, err := eng.DetectTraces([]string{"escalate", "resolve", "close"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("incidents that escalated but still closed: %d\n", len(ids))

	// Mean time from open to close, estimated from pairwise statistics
	// without touching a single trace.
	stats, err := eng.Stats([]string{"open", "assign", "investigate", "resolve", "close"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("happy-path completions bound: %d, estimated duration: %.1f hours\n",
		stats.MaxCompletions, stats.EstimatedDuration/3600000)

	// What usually follows an escalation?
	props, err := eng.Explore([]string{"escalate"}, seqlog.Accurate, seqlog.ExploreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after an escalation, the next step is typically:")
	for i, p := range props {
		if i >= 3 {
			break
		}
		fmt.Printf("  %-12s (%d completions, avg %.1f min later)\n",
			p.Activity, p.Completions, p.AvgDuration/60000)
	}
}
