// Service: the full client/server architecture of Figure 1 in one process —
// a query-processor HTTP service over an engine, driven by an HTTP client
// that ingests a log and runs every endpoint.
//
//	go run ./examples/service
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"

	"seqlog"
	"seqlog/internal/server"
)

func post(base, path string, body any, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("%s: %s (%d)", path, e.Error, resp.StatusCode)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

func main() {
	eng, err := seqlog.Open(seqlog.Config{Policy: "STNM"})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// Serve on an ephemeral port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: server.New(eng)}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("query processor listening on", base)

	// Ingest a small deployment-pipeline log over HTTP.
	var events []seqlog.Event
	stagesByTrace := [][]string{
		{"commit", "build", "test", "deploy"},
		{"commit", "build", "test", "rollback"},
		{"commit", "build", "build", "test", "deploy"},
		{"commit", "test", "deploy"},
	}
	for t, stages := range stagesByTrace {
		ts := int64(0)
		for _, s := range stages {
			ts += 60000
			events = append(events, seqlog.Event{Trace: int64(t + 1), Activity: s, Time: ts})
		}
	}
	var ingest seqlog.UpdateStats
	if err := post(base, "/ingest", server.IngestRequest{Events: events}, &ingest); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d events over HTTP\n\n", ingest.Events)

	// Detection over HTTP.
	var det server.DetectResponse
	if err := post(base, "/detect", server.DetectRequest{Pattern: []string{"build", "deploy"}}, &det); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipelines where a build eventually deployed: %d matches\n", len(det.Matches))
	for _, m := range det.Matches {
		fmt.Printf("  trace %d at %v\n", m.Trace, m.Times)
	}

	// Statistics over HTTP.
	var stats seqlog.PatternStats
	if err := post(base, "/stats", server.StatsRequest{Pattern: []string{"commit", "build", "test"}}, &stats); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncommit->build->test: at most %d completions, est %.0fs\n",
		stats.MaxCompletions, stats.EstimatedDuration/1000)

	// Continuation over HTTP.
	var explore struct {
		Proposals []seqlog.Proposal `json:"proposals"`
	}
	if err := post(base, "/explore", server.ExploreRequest{Pattern: []string{"test"}, Mode: "accurate"}, &explore); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwhat follows a test stage:")
	for _, p := range explore.Proposals {
		fmt.Printf("  %-10s completions=%d score=%.4f\n", p.Activity, p.Completions, p.Score)
	}
}
