// Clickstream: next-action prediction over a large synthetic web log.
//
// The intro of the paper motivates detecting patterns like "a search
// immediately followed by adding the product to the cart" (strict
// contiguity) and "three searches with no purchase" (skip till next match).
// This example generates 20,000 sessions from a behavioural funnel, indexes
// them, and contrasts the three continuation strategies — Accurate, Fast and
// Hybrid — on response time and agreement, exactly the trade-off of §3.2.2.
//
//	go run ./examples/clickstream
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"seqlog"
)

// funnel is a tiny behavioural model: each action has weighted successors.
var funnel = map[string][]string{
	"landing":     {"search", "search", "browse", "exit"},
	"search":      {"view", "view", "view", "search", "exit"},
	"browse":      {"view", "browse", "exit"},
	"view":        {"add-to-cart", "view", "search", "exit"},
	"add-to-cart": {"checkout", "view", "exit"},
	"checkout":    {"pay", "exit"},
	"pay":         {},
	"exit":        {},
}

func simulateSessions(n int, seed int64) []seqlog.Event {
	rng := rand.New(rand.NewSource(seed))
	var events []seqlog.Event
	for s := 1; s <= n; s++ {
		ts := int64(0)
		action := "landing"
		for step := 0; step < 40; step++ {
			events = append(events, seqlog.Event{Trace: int64(s), Activity: action, Time: ts})
			next := funnel[action]
			if len(next) == 0 {
				break
			}
			action = next[rng.Intn(len(next))]
			ts += 200 + rng.Int63n(5000)
		}
	}
	return events
}

func main() {
	eng, err := seqlog.Open(seqlog.Config{Policy: "STNM"})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	events := simulateSessions(20000, 7)
	start := time.Now()
	st, err := eng.Ingest(events)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d events / %d sessions in %v (%d pair occurrences)\n\n",
		st.Events, st.Traces, time.Since(start).Round(time.Millisecond), st.Occurrences)

	// How often does a search eventually lead to payment in one session?
	paying, err := eng.DetectTraces([]string{"search", "pay"})
	if err != nil {
		log.Fatal(err)
	}
	searching, err := eng.DetectTraces([]string{"landing", "search"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sessions searching: %d; of those reaching payment: %d (%.1f%%)\n\n",
		len(searching), len(paying), 100*float64(len(paying))/float64(len(searching)))

	// Predict the next action after search -> view -> add-to-cart with
	// all three strategies and compare cost vs agreement.
	pattern := []string{"search", "view", "add-to-cart"}
	type run struct {
		mode  seqlog.ExploreMode
		opts  seqlog.ExploreOptions
		props []seqlog.Proposal
		took  time.Duration
	}
	runs := []run{
		{mode: seqlog.Accurate},
		{mode: seqlog.Fast},
		{mode: seqlog.Hybrid, opts: seqlog.ExploreOptions{TopK: 2}},
	}
	for i := range runs {
		t0 := time.Now()
		runs[i].props, err = eng.Explore(pattern, runs[i].mode, runs[i].opts)
		if err != nil {
			log.Fatal(err)
		}
		runs[i].took = time.Since(t0)
	}

	fmt.Printf("next-action prediction after %v:\n", pattern)
	for _, r := range runs {
		fmt.Printf("  %-8s (%8v):", r.mode, r.took.Round(time.Microsecond))
		for i, p := range r.props {
			if i >= 3 {
				break
			}
			fmt.Printf("  %s(score %.4f)", p.Activity, p.Score)
		}
		fmt.Println()
	}
	fmt.Println("\nAccurate verifies every candidate with a full detection;")
	fmt.Println("Fast reads only precomputed statistics; Hybrid re-checks the top-K.")
}
