package seqlog

import (
	"context"

	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
)

// The differential oracle for horizontal sharding: a K-shard engine must be
// OBSERVABLY IDENTICAL to the single-store engine over the same log — same
// matches, same statistics, same rankings, byte for byte — for every query
// family. 1 vs 4 vs 7 shards covers the degenerate, power-of-two and prime
// cases of the routing hash; randomized multi-batch logs (with a period
// rotation mid-stream) exercise incremental dedup, cross-period merges and
// count aggregation across partial per-shard rows.

// oracleShardCounts are the shard counts compared against each other.
var oracleShardCounts = []int{1, 4, 7}

// oracleWorkload is one randomized log: ingestion batches (traces may span
// batch boundaries, so later batches extend stored traces) plus the pattern
// sets the query families are interrogated with.
type oracleWorkload struct {
	batches  [][]Event
	patterns [][]string // detection patterns (len >= 2)
	prefixes [][]string // continuation prefixes (len >= 1)
}

func oracleLog(seed int64) oracleWorkload {
	rng := rand.New(rand.NewSource(seed))
	acts := make([]string, 8)
	for i := range acts {
		acts[i] = fmt.Sprintf("act%d", i)
	}
	var (
		events []Event
		seqs   [][]string
	)
	for t := 0; t < 48; t++ {
		id := rng.Int63() // spread across the full id space: routing must not care
		ts := int64(rng.Intn(1000))
		n := 12 + rng.Intn(36)
		var names []string
		for j := 0; j < n; j++ {
			ts += int64(1 + rng.Intn(17))
			a := acts[rng.Intn(len(acts))]
			names = append(names, a)
			events = append(events, Event{Trace: id, Activity: a, Time: ts})
		}
		seqs = append(seqs, names)
	}

	var w oracleWorkload
	// Four batches; boundaries cut traces, exercising watermark dedup.
	for lo := 0; lo < len(events); lo += (len(events) + 3) / 4 {
		hi := lo + (len(events)+3)/4
		if hi > len(events) {
			hi = len(events)
		}
		w.batches = append(w.batches, events[lo:hi])
	}
	for i := 0; i < 12; i++ {
		s := seqs[rng.Intn(len(seqs))]
		n := 2 + rng.Intn(3)
		if n > len(s) {
			n = len(s)
		}
		at := rng.Intn(len(s) - n + 1)
		w.patterns = append(w.patterns, s[at:at+n])
		w.prefixes = append(w.prefixes, s[at:at+1+rng.Intn(n-1)])
	}
	// Unknown-activity and cross-trace patterns: the zero-result paths must
	// agree too.
	w.patterns = append(w.patterns,
		[]string{"never-seen", acts[0]},
		[]string{acts[0], acts[1], acts[2], acts[3]},
	)
	w.prefixes = append(w.prefixes, []string{acts[3]})
	return w
}

// oracleEngine is one labeled participant in a differential comparison. The
// first entry of a slice is the baseline the rest must match byte-for-byte.
type oracleEngine struct {
	name string
	eng  *Engine
}

// oracleIngest loads the workload into an engine the canonical way: two
// batches, a period rotation, then the remaining batches into the new
// partition.
func oracleIngest(t *testing.T, name string, eng *Engine, w oracleWorkload) {
	t.Helper()
	for bi, batch := range w.batches {
		if bi == 2 {
			if err := eng.RotatePeriod("p2"); err != nil {
				t.Fatalf("%s: rotate: %v", name, err)
			}
		}
		if _, err := eng.Ingest(batch); err != nil {
			t.Fatalf("%s: ingest batch %d: %v", name, bi, err)
		}
	}
}

// openOracleEngines opens one in-memory engine per shard count and ingests
// the workload identically into each.
func openOracleEngines(t *testing.T, w oracleWorkload) []oracleEngine {
	t.Helper()
	engines := make([]oracleEngine, 0, len(oracleShardCounts))
	for _, n := range oracleShardCounts {
		eng, err := Open(Config{Policy: "STNM", Shards: n, Workers: 2, QueryWorkers: 2})
		if err != nil {
			t.Fatalf("open %d-shard engine: %v", n, err)
		}
		t.Cleanup(func() { eng.Close() })
		name := fmt.Sprintf("%d-shard", n)
		oracleIngest(t, name, eng, w)
		engines = append(engines, oracleEngine{name, eng})
	}
	return engines
}

// jrun renders fn's result (or its error) canonically for byte comparison.
func jrun(t *testing.T, fn func() (any, error)) string {
	t.Helper()
	v, err := fn()
	return jdump(t, v, err)
}

// jdump renders a result (or its error) canonically for byte comparison.
func jdump(t *testing.T, v any, err error) string {
	t.Helper()
	if err != nil {
		return "error: " + err.Error()
	}
	raw, merr := json.Marshal(v)
	if merr != nil {
		t.Fatalf("marshal: %v", merr)
	}
	return string(raw)
}

// assertAgree runs fn against every engine and asserts the rendered results
// are byte-identical to the first (baseline) engine.
func assertAgree(t *testing.T, engines []oracleEngine, label string, fn func(*Engine) (any, error)) {
	t.Helper()
	want := ""
	for i, oe := range engines {
		v, err := fn(oe.eng)
		got := jdump(t, v, err)
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("%s: %s diverges from %s\n %s: %s\n %s: %s",
				label, oe.name, engines[0].name, engines[0].name, want, oe.name, got)
		}
	}
}

// runOracleBattery interrogates every engine with the workload's full query
// matrix — detection (plain, traced, planned, windowed), statistics,
// continuation exploration in every mode — then exercises the mutating prune
// path and re-compares. Engines must already hold the workload. This is THE
// shared differential battery: the shard-count oracle and the netshard
// (remote store) oracle both run it, so a backend implementation is proven
// against the same surface the local engine answers.
func runOracleBattery(t *testing.T, engines []oracleEngine, w oracleWorkload) {
	t.Helper()

	// Index shape: same traces, same partitions, same pair counts.
	assertAgree(t, engines, "numtraces", func(e *Engine) (any, error) {
		n, err := e.NumTraces()
		return n, err
	})
	assertAgree(t, engines, "periods", func(e *Engine) (any, error) {
		return e.Periods()
	})
	assertAgree(t, engines, "partitions", func(e *Engine) (any, error) {
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		return info.Partitions, nil
	})

	for pi, p := range w.patterns {
		p := p
		assertAgree(t, engines, fmt.Sprintf("detect[%d]", pi), func(e *Engine) (any, error) {
			return e.Detect(p)
		})
		assertAgree(t, engines, fmt.Sprintf("detectTraces[%d]", pi), func(e *Engine) (any, error) {
			return e.DetectTraces(p)
		})
		assertAgree(t, engines, fmt.Sprintf("detectPlanned[%d]", pi), func(e *Engine) (any, error) {
			mp, ok, err := e.pattern(p)
			if err != nil || !ok {
				return nil, err
			}
			return e.proc.DetectPlanned(context.Background(), mp)
		})
		assertAgree(t, engines, fmt.Sprintf("detectWithin[%d]", pi), func(e *Engine) (any, error) {
			return e.DetectWithin(p, 40)
		})
		assertAgree(t, engines, fmt.Sprintf("stats[%d]", pi), func(e *Engine) (any, error) {
			return e.Stats(p)
		})
		assertAgree(t, engines, fmt.Sprintf("statsAll[%d]", pi), func(e *Engine) (any, error) {
			return e.StatsAllPairs(p)
		})
	}

	for pi, p := range w.prefixes {
		p := p
		for _, mode := range []ExploreMode{Accurate, Fast, Hybrid} {
			mode := mode
			assertAgree(t, engines, fmt.Sprintf("explore-%s[%d]", mode, pi), func(e *Engine) (any, error) {
				return e.Explore(p, mode, ExploreOptions{TopK: 3})
			})
		}
		assertAgree(t, engines, fmt.Sprintf("exploreGap[%d]", pi), func(e *Engine) (any, error) {
			return e.Explore(p, Hybrid, ExploreOptions{TopK: 2, MaxAvgGap: 25})
		})
		assertAgree(t, engines, fmt.Sprintf("exploreInsert[%d]", pi), func(e *Engine) (any, error) {
			return e.ExploreInsert(p, 0, Hybrid, ExploreOptions{TopK: 2})
		})
	}

	// Mutating paths must stay in lockstep too: prune a known trace
	// everywhere, then re-compare a detection.
	tr := w.batches[0][0].Trace
	for _, oe := range engines {
		if err := oe.eng.PruneTraces([]int64{tr}); err != nil {
			t.Fatalf("%s: prune: %v", oe.name, err)
		}
	}
	assertAgree(t, engines, "numtraces-after-prune", func(e *Engine) (any, error) {
		n, err := e.NumTraces()
		return n, err
	})
	assertAgree(t, engines, "detect-after-prune", func(e *Engine) (any, error) {
		return e.Detect(w.patterns[0])
	})
}

func TestShardCountInvariance(t *testing.T) {
	for _, seed := range []int64{7, 101, 4242} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			w := oracleLog(seed)
			engines := openOracleEngines(t, w)
			runOracleBattery(t, engines, w)
		})
	}
}

// TestShardedDurableReopen round-trips a sharded engine through disk: the
// shard directories reopen to the same answers, and the pinned shard count
// rejects a mismatched reopen instead of silently re-routing keys.
func TestShardedDurableReopen(t *testing.T) {
	dir := t.TempDir()
	w := oracleLog(99)
	eng, err := Open(Config{Policy: "STNM", Shards: 4, Dir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range w.batches {
		if _, err := eng.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	want := jrun(t, func() (any, error) { return eng.Detect(w.patterns[0]) })
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// Wrong shard count: refused.
	if _, err := Open(Config{Policy: "STNM", Shards: 2, ShardDir: dir, Dir: dir}); err == nil {
		t.Fatal("reopen with 2 shards over a 4-shard store succeeded")
	}
	// Single-store open of a sharded directory: refused by the layout guard.
	if _, err := Open(Config{Policy: "STNM", Dir: dir}); err == nil {
		t.Fatal("single-store reopen of a sharded directory succeeded")
	}

	reopened, err := Open(Config{Policy: "STNM", Shards: 4, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if info, err := reopened.Info(); err != nil || info.Shards != 4 {
		t.Fatalf("reopened info: %+v, %v (want 4 shards)", info, err)
	}
	if got := jrun(t, func() (any, error) { return reopened.Detect(w.patterns[0]) }); got != want {
		t.Fatalf("reopened sharded engine diverges:\nbefore: %s\nafter:  %s", want, got)
	}
}

// TestShardedStreamMatchesBatch: the streaming pipeline over a sharded
// backend (per-shard group commits) produces the same index as serial batch
// ingestion into a 1-shard engine.
func TestShardedStreamMatchesBatch(t *testing.T) {
	w := oracleLog(17)

	serial, err := Open(Config{Policy: "STNM", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer serial.Close()
	for _, b := range w.batches {
		if _, err := serial.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}

	sharded, err := Open(Config{Policy: "STNM", Shards: 4, Workers: 2, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	app, err := sharded.OpenStream(StreamOptions{Block: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range w.batches {
		if err := app.Append(b); err != nil {
			t.Fatal(err)
		}
		if err := app.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}

	for pi, p := range w.patterns {
		want := jrun(t, func() (any, error) { return serial.Detect(p) })
		got := jrun(t, func() (any, error) { return sharded.Detect(p) })
		if got != want {
			t.Errorf("pattern %d: streamed 4-shard engine diverges from serial 1-shard\nwant %s\ngot  %s", pi, want, got)
		}
	}
	stats := jrun(t, func() (any, error) { return serial.Stats(w.patterns[0]) })
	if got := jrun(t, func() (any, error) { return sharded.Stats(w.patterns[0]) }); got != stats {
		t.Errorf("stats diverge:\nwant %s\ngot  %s", stats, got)
	}
}
