#!/bin/sh
# ctxguard: vet-style grep gate for the context-first rule of the query
# path (DESIGN.md §11). Cancellation and row budgets flow through
# context.Context; a query-path function that doesn't take ctx as its
# first parameter silently breaks the chain — a canceled request would
# keep computing below it. This guard fails the build when a new exported
# query entry point or storage read forgets the parameter.
#
# Allowlists are for functions that genuinely sit outside the chain
# (setters, topology accessors, point meta reads). Extend them only for
# functions that perform no per-row work on behalf of a query.
set -eu
cd "$(dirname "$0")/.."

status=0

# Rule 1: every exported Processor method is a query entry point and must
# take ctx first. SetWorkers is a configuration setter.
bad=$(grep -nE 'func \([a-zA-Z]+ \*Processor\) [A-Z][A-Za-z0-9]*\(' internal/query/*.go \
	| grep -v '_test.go' \
	| grep -vE '\) SetWorkers\(' \
	| grep -vE '\) [A-Z][A-Za-z0-9]*\((ctx|_) context\.Context' || true)
if [ -n "$bad" ]; then
	echo "ctxguard: exported query methods without a leading ctx context.Context:" >&2
	echo "$bad" >&2
	status=1
fi

# Rule 2: storage reads (Get*/Scan*/Num*/Periods on the backends) carry the
# query's context down to the row iterators. NumShards reports topology,
# GetMeta is a point read of a single meta key.
bad=$(grep -nE 'func \([a-zA-Z]+ \*Tables\) (Get|Scan|Num|Periods)[A-Za-z0-9]*\(' \
	internal/storage/*.go internal/shard/*.go \
	| grep -v '_test' \
	| grep -vE '\) (NumShards|GetMeta)\(' \
	| grep -vE '\((ctx|_) context\.Context' || true)
if [ -n "$bad" ]; then
	echo "ctxguard: storage reads without a leading ctx context.Context:" >&2
	echo "$bad" >&2
	status=1
fi

# Rule 3: the netshard client implements the same Backend read surface over
# the wire; its reads must carry ctx down to the RPC so a canceled query
# stops burning the remote shard server too. NumShards reports topology and
# GetMeta is a context-free point read, per the Backend contract.
bad=$(grep -nE 'func \([a-zA-Z]+ \*Client\) (Get|Scan|Num|Periods)[A-Za-z0-9]*\(' \
	internal/netshard/*.go \
	| grep -v '_test' \
	| grep -vE '\) (NumShards|GetMeta)\(' \
	| grep -vE '\((ctx|_) context\.Context' || true)
if [ -n "$bad" ]; then
	echo "ctxguard: netshard client reads without a leading ctx context.Context:" >&2
	echo "$bad" >&2
	status=1
fi

exit $status
