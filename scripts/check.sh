#!/bin/sh
# Fast correctness gate for the hot paths, organized as named tiers.
#
#   scripts/check.sh            # run every tier
#   scripts/check.sh all        # same
#   scripts/check.sh shards     # run one tier
#   scripts/check.sh vet cancel # run several
#
# Wall-clock budget: `check.sh all` is sized to finish in ~5 minutes on a
# 4-core developer machine. Hammer, torture and crash-sweep tests honour
# -short (smaller logs, sparser sweeps, same shapes and race windows), and
# the tiers below pass it to the heavyweight ones so no single tier exceeds
# ~1 minute. When adding a test to a tier, keep the budget: gate anything
# slower than a few seconds behind testing.Short().
#
# Full unabridged suite: go test ./...
set -eu

cd "$(dirname "$0")/.."

want() {
	# want TIER: true when TIER was requested (or everything was).
	case " $TIERS " in
	*" all "*) return 0 ;;
	*" $1 "*) return 0 ;;
	*) return 1 ;;
	esac
}

TIERS="${*:-all}"

set -x

# Vet tier: static checks, then the query/storage/kvstore suites under the
# race detector (these are the packages with real concurrency: postings
# cache, parallel continuation, WAL).
if want vet; then
	go vet ./...
	go test -race ./internal/query/... ./internal/storage/... ./internal/kvstore/...
fi

# Crash-torture tier: replay every write-path crash point and every
# single-byte corruption through recovery (see DESIGN.md "Durability &
# failure model"). Redundant with the vet tier but kept as an explicit
# gate so a -run filter during debugging can't silently skip it.
if want crash; then
	go test -race -run 'Crash|Corrupt' ./internal/kvstore/
fi

# Ingest tier: the streaming pipeline under the race detector, plus the
# serial-equivalence oracles (streamed micro-batches at 1, 2 and 4 ingest
# workers — and 1 vs N sharded stores — must produce exactly the tables of
# one serial Builder.Update), the group-commit crash sweeps (including the
# sharded one: an acked flush is durable on EVERY store it touched, even
# crashing mid-fsync-coalesce), and the parallel-flusher regression gates
# (timer hygiene, all-or-nothing admission, producer/Flush/Forget hammer),
# run explicitly for the same reason as above.
if want ingest; then
	go test -race -short ./internal/ingest/...
	go test -race -short -run 'StreamEqualsSerialBuilder|StreamShardedEqualsSerial|StreamCrash|ShardedStreamCrash' ./internal/ingest/
	go test -race -short -run 'TimerHygiene|Admission|ParallelFlushersRaceHammer' ./internal/ingest/
	go test -race -run 'SealBatch|PipelinedBatch' ./internal/kvstore/
fi

# Metrics tier: the registry and the whole telemetry path under the race
# detector (parallel queries + live ingest stream + concurrent /metrics
# scrapes), then a real-binary scrape assertion (seqserver -pprof
# -slow-query-ms, curl-style GET /metrics, seqquery metrics verb).
if want metrics; then
	go test -race ./internal/metrics/
	go test -race -run 'Metrics|Disconnect' ./internal/server/
	go test -run 'Metrics' ./internal/clitest/
fi

# Shards tier: the differential oracle (1 vs 4 vs 7 shards must be
# byte-identical for every query family), the routing/codec fuzz targets on
# their seed corpora plus a short live fuzz, and the concurrency gates — the
# ingest+query+compaction hammer and the one-shard crash-isolation sweep —
# under the race detector.
if want shards; then
	go test -run 'TestShard' .
	go test ./internal/shard/ ./internal/storage/ -run Fuzz
	go test ./internal/shard/ -fuzz FuzzShardRouting -fuzztime 5s
	go test ./internal/storage/ -fuzz FuzzSeqCodec -fuzztime 5s
	go test -race -short -run 'ShardedConcurrentHammer|ShardCrashIsolation' ./internal/shard/
fi

# Segments tier: the block codec and segment-file fuzz targets (seed corpora
# plus a short live fuzz each), the segment differential oracle (row-backed,
# segment-backed, sharded-segment and compacting engines must be
# byte-identical for every query family, across freezes, reopen and drops),
# and the freeze crash sweeps — a fault-injected filesystem cut at every
# byte/op of two freezes, recovery must never lose committed data (torn
# segment falls back to WAL replay).
if want segments; then
	go test ./internal/storage/ -fuzz FuzzPostingsBlocks -fuzztime 5s
	go test ./internal/storage/ -fuzz FuzzSegmentFile -fuzztime 5s
	go test -run 'TestSegment' .
	go test -race -short -run 'FreezeCrash' ./internal/storage/
fi

# Cancellation tier: the cooperative-cancellation paths under the race
# detector — partial-results subset property, the slow-disk chaos harness
# (bounded cancel latency + zero leaked goroutines), the random-cancellation
# hammer racing flushes/freezes/compactions, and the server zombie-work
# regression (timed-out and disconnected requests stop their workers).
# ctxguard rejects new exported query-path functions without a leading ctx.
if want cancel; then
	go test -race -run 'Partial|Budget|Cancel' ./internal/query/
	go test -race -run 'CancellationBoundedUnderSlowDisk' ./internal/ingest/
	go test -race -short -run 'CancelHammer' ./internal/shard/
	go test -race -run 'TimedOutDetectAborted|DisconnectedDetectStopsWorkers' ./internal/server/
	sh scripts/ctxguard.sh
fi

# Replica tier: the replication subsystem end-to-end under the race
# detector — follower-side atomic apply + crash idempotence (FaultFS sweep),
# the catch-up differential oracle (a caught-up follower answers every query
# family byte-identically to its primary), segment shipping + epoch-bump
# resync, the disconnect/reconnect chaos harness with the goroutine-leak
# gate, router read balancing / write pinning / mid-request failover, and
# the read-only guard (engine ErrReadOnly, HTTP 403, /health/ready 503).
if want replica; then
	go test -race -run 'Replica|Resync' ./internal/storage/
	go test -race ./internal/replica/
	go test -race -run 'GetStream' ./internal/httpclient/
fi

# Netshard tier: the wire protocol and multi-process shard fleet under the
# race detector — the differential oracle (an engine over remote shard
# servers is byte-identical to the local single- and multi-shard engines for
# every query family, including stream-vs-batch ingest and cold reopen), the
# network chaos harness (partitions, stalls, mid-scatter server death; typed
# errors, bounded cancel latency, zero leaked goroutines), the remote
# acked-flush durability sweep, and the frame/request fuzz targets on their
# seed corpora plus a short live fuzz. ctxguard's Rule 3 holds the netshard
# client to the same ctx-first contract as the local backends.
if want netshard; then
	go test -race -count=1 ./internal/netshard/
	go test -race -run 'TestNetShard' .
	go test -race -short -run 'NetshardStreamCrash' ./internal/ingest/
	go test ./internal/netshard/ -run Fuzz
	go test ./internal/netshard/ -fuzz FuzzNetFrame -fuzztime 5s
	go test ./internal/netshard/ -fuzz FuzzNetRequest -fuzztime 5s
	sh scripts/ctxguard.sh
fi
