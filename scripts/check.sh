#!/bin/sh
# Fast correctness gate for the hot paths: vet everything, then run the
# query/storage/kvstore suites under the race detector (these are the
# packages with real concurrency: postings cache, parallel continuation,
# WAL). Full suite: go test ./...
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go test -race ./internal/query/... ./internal/storage/... ./internal/kvstore/...
