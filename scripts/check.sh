#!/bin/sh
# Fast correctness gate for the hot paths: vet everything, then run the
# query/storage/kvstore suites under the race detector (these are the
# packages with real concurrency: postings cache, parallel continuation,
# WAL). Full suite: go test ./...
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go test -race ./internal/query/... ./internal/storage/... ./internal/kvstore/...

# Crash-torture tier: replay every write-path crash point and every
# single-byte corruption through recovery (see DESIGN.md "Durability &
# failure model"). Redundant with the line above but kept as an explicit
# gate so a -run filter during debugging can't silently skip it.
go test -race -run 'Crash|Corrupt' ./internal/kvstore/

# Ingest tier: the streaming pipeline under the race detector, plus the
# serial-equivalence oracles (streamed micro-batches at 1, 2 and 4 ingest
# workers — and 1 vs N sharded stores — must produce exactly the tables of
# one serial Builder.Update), the group-commit crash sweeps (including the
# sharded one: an acked flush is durable on EVERY store it touched, even
# crashing mid-fsync-coalesce), and the parallel-flusher regression gates
# (timer hygiene, all-or-nothing admission, producer/Flush/Forget hammer),
# run explicitly for the same reason as above.
go test -race ./internal/ingest/...
go test -race -run 'StreamEqualsSerialBuilder|StreamShardedEqualsSerial|StreamCrash|ShardedStreamCrash' ./internal/ingest/
go test -race -run 'TimerHygiene|Admission|ParallelFlushersRaceHammer' ./internal/ingest/
go test -race -run 'SealBatch|PipelinedBatch' ./internal/kvstore/

# Metrics tier: the registry and the whole telemetry path under the race
# detector (parallel queries + live ingest stream + concurrent /metrics
# scrapes), then a real-binary scrape assertion (seqserver -pprof
# -slow-query-ms, curl-style GET /metrics, seqquery metrics verb).
go test -race ./internal/metrics/
go test -race -run 'Metrics|Disconnect' ./internal/server/
go test -run 'Metrics' ./internal/clitest/

# Shards tier: the differential oracle (1 vs 4 vs 7 shards must be
# byte-identical for every query family), the routing/codec fuzz targets on
# their seed corpora plus a short live fuzz, and the concurrency gates — the
# ingest+query+compaction hammer and the one-shard crash-isolation sweep —
# under the race detector.
go test -run 'TestShard' .
go test ./internal/shard/ ./internal/storage/ -run Fuzz
go test ./internal/shard/ -fuzz FuzzShardRouting -fuzztime 5s
go test ./internal/storage/ -fuzz FuzzSeqCodec -fuzztime 5s
go test -race -short -run 'ShardedConcurrentHammer|ShardCrashIsolation' ./internal/shard/

# Segments tier: the block codec and segment-file fuzz targets (seed corpora
# plus a short live fuzz each), the segment differential oracle (row-backed,
# segment-backed, sharded-segment and compacting engines must be
# byte-identical for every query family, across freezes, reopen and drops),
# and the freeze crash sweeps — a fault-injected filesystem cut at every
# byte/op of two freezes, recovery must never lose committed data (torn
# segment falls back to WAL replay).
go test ./internal/storage/ -fuzz FuzzPostingsBlocks -fuzztime 5s
go test ./internal/storage/ -fuzz FuzzSegmentFile -fuzztime 5s
go test -run 'TestSegment' .
go test -race -short -run 'FreezeCrash' ./internal/storage/

# Cancellation tier: the cooperative-cancellation paths under the race
# detector — partial-results subset property, the slow-disk chaos harness
# (bounded cancel latency + zero leaked goroutines), the random-cancellation
# hammer racing flushes/freezes/compactions, and the server zombie-work
# regression (timed-out and disconnected requests stop their workers).
# ctxguard rejects new exported query-path functions without a leading ctx.
go test -race -run 'Partial|Budget|Cancel' ./internal/query/
go test -race -run 'CancellationBoundedUnderSlowDisk' ./internal/ingest/
go test -race -run 'CancelHammer' ./internal/shard/
go test -race -run 'TimedOutDetectAborted|DisconnectedDetectStopsWorkers' ./internal/server/
sh scripts/ctxguard.sh

# Replica tier: the replication subsystem end-to-end under the race
# detector — follower-side atomic apply + crash idempotence (FaultFS sweep),
# the catch-up differential oracle (a caught-up follower answers every query
# family byte-identically to its primary), segment shipping + epoch-bump
# resync, the disconnect/reconnect chaos harness with the goroutine-leak
# gate, router read balancing / write pinning / mid-request failover, and
# the read-only guard (engine ErrReadOnly, HTTP 403, /health/ready 503).
go test -race -run 'Replica|Resync' ./internal/storage/
go test -race ./internal/replica/
go test -race -run 'GetStream' ./internal/httpclient/
