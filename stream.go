package seqlog

import (
	"context"
	"errors"
	"fmt"
	"time"

	"seqlog/internal/ingest"
	"seqlog/internal/model"
)

// ErrOverloaded is returned by a non-blocking stream Append when the
// pipeline's input queue is full. Nothing of the batch was enqueued; the
// caller should retry after a flush drains the queue.
var ErrOverloaded = ingest.ErrOverloaded

// StreamOptions tunes an ingestion stream. Zero fields fall back to the
// engine Config (IngestWorkers, FlushEvents, FlushInterval, IngestQueue)
// and then to the pipeline defaults.
type StreamOptions struct {
	// Workers is the number of trace-affinity shards / extraction workers.
	Workers int
	// FlushEvents triggers a flush once this many events are buffered.
	FlushEvents int
	// FlushInterval bounds how long a buffered event waits for its flush.
	FlushInterval time.Duration
	// QueueEvents bounds the input queue (backpressure threshold).
	QueueEvents int
	// Inflight caps how many flush cycles may be past extraction at once
	// (the commit pipelining depth). 1 restores strictly serial commits;
	// the default (2) lets extraction and table writes of one cycle overlap
	// the previous cycle's fsync.
	Inflight int
	// Block makes Append wait for queue space instead of returning
	// ErrOverloaded.
	Block bool
}

// IngestStats mirrors the pipeline counters of the streaming write path.
type IngestStats struct {
	Queued   int64 `json:"queued"`
	Accepted int64 `json:"accepted"`
	Flushed  int64 `json:"flushed"`
	Batches  int64 `json:"batches"`
	Syncs    int64 `json:"syncs"`
	Stalls   int64 `json:"stalls"`
	Sessions int64 `json:"sessions,omitempty"`
}

// Appender is one handle onto the engine's shared ingestion stream. All
// appenders feed the same pipeline; the last Close drains it with a final
// group commit. An Appender is safe for concurrent use, but events of one
// trace must be appended in timestamp order (across all its appenders) for
// the serial-equivalence guarantee.
type Appender struct {
	e      *Engine
	closed bool
}

// OpenStream opens (or joins) the engine's streaming ingestion pipeline.
// The first call starts the pipeline; later calls return additional
// appenders onto it — opts of later calls are ignored. An acknowledged
// Flush (and every acknowledged non-blocking Append after its flush) is
// durable on disk-backed engines: each flush commits as one atomic WAL
// group with a single fsync.
func (e *Engine) OpenStream(opts StreamOptions) (*Appender, error) {
	if err := e.readOnlyErr(); err != nil {
		return nil, err
	}
	if e.cfg.PartialOrder {
		return nil, errors.New("seqlog: streaming ingestion requires a total order (the partial-order extractor is batch-only)")
	}
	e.pipeMu.Lock()
	defer e.pipeMu.Unlock()
	if e.pipeline == nil {
		pick := func(v, cfg int) int {
			if v > 0 {
				return v
			}
			return cfg
		}
		interval := opts.FlushInterval
		if interval <= 0 {
			interval = e.cfg.FlushInterval
		}
		p, err := ingest.New(e.tables, ingest.Options{
			Policy:        e.builder.Options().Policy,
			Period:        e.cfg.Period,
			Workers:       pick(opts.Workers, pick(e.cfg.IngestWorkers, e.cfg.Workers)),
			FlushEvents:   pick(opts.FlushEvents, e.cfg.FlushEvents),
			FlushInterval: interval,
			QueueEvents:   pick(opts.QueueEvents, e.cfg.IngestQueue),
			MaxInflight:   pick(opts.Inflight, e.cfg.IngestInflight),
			Block:         opts.Block,
			CommitLock:    &e.mu,
			BeforeCommit:  e.persistAlphabetIfGrown,
			Metrics:       e.metrics,
		})
		if err != nil {
			return nil, err
		}
		e.pipeline = p
	}
	e.streams++
	return &Appender{e: e}, nil
}

// persistAlphabetIfGrown persists the interned alphabet when it grew since
// the last persist, reporting whether it wrote. It runs under e.mu — as the
// pipeline's BeforeCommit hook it executes inside the flush's atomic batch
// group, so new activity names become durable in the same fsync as the
// events that introduced them; on a sharded backend the pipeline uses the
// grew report to force the meta store's group durable before the other
// shards' groups seal.
func (e *Engine) persistAlphabetIfGrown() (bool, error) {
	if n := e.alphabet.Len(); n != e.persistedActs {
		if err := e.persistAlphabet(); err != nil {
			return false, err
		}
		e.persistedActs = n
		return true, nil
	}
	return false, nil
}

// intern converts public events to model events. Alphabet interning is
// thread-safe, so appenders do not contend on the engine mutex.
func (e *Engine) intern(events []Event) []model.Event {
	batch := make([]model.Event, len(events))
	for i, ev := range events {
		batch[i] = model.Event{
			Trace:    model.TraceID(ev.Trace),
			Activity: e.alphabet.ID(ev.Activity),
			TS:       model.Timestamp(ev.Time),
		}
	}
	return batch
}

// Append admits events into the stream. In non-blocking mode a full queue
// returns ErrOverloaded and admits nothing.
func (a *Appender) Append(events []Event) error {
	return a.AppendCtx(context.Background(), events)
}

// AppendCtx is Append with a cancellable admission wait: a caller blocked on
// backpressure unblocks with ctx.Err() when ctx is done, and in that case
// nothing of the batch was admitted — admission is all-or-nothing.
func (a *Appender) AppendCtx(ctx context.Context, events []Event) error {
	if a.closed {
		return ingest.ErrClosed
	}
	if len(events) == 0 {
		return nil
	}
	return a.e.pipeline.AppendCtx(ctx, a.e.intern(events))
}

// Flush commits everything this appender admitted and blocks until the
// commit is durable (fsynced on disk-backed engines).
func (a *Appender) Flush() error {
	return a.FlushCtx(context.Background())
}

// FlushCtx is Flush with a cancellable wait: when ctx is done the caller
// unblocks with ctx.Err() while the flush itself keeps running (other
// appenders may be relying on it).
func (a *Appender) FlushCtx(ctx context.Context) error {
	if a.closed {
		return ingest.ErrClosed
	}
	return a.e.pipeline.FlushCtx(ctx)
}

// Stats snapshots the shared pipeline counters.
func (a *Appender) Stats() IngestStats {
	return IngestStats(a.e.pipeline.Stats())
}

// Close detaches this appender. The last Close drains the pipeline with a
// final group commit and stops it; a later OpenStream starts a fresh one.
func (a *Appender) Close() error {
	if a.closed {
		return nil
	}
	a.closed = true
	return a.e.releaseStream()
}

func (e *Engine) releaseStream() error {
	e.pipeMu.Lock()
	e.streams--
	var p *ingest.Pipeline
	if e.streams == 0 {
		p, e.pipeline = e.pipeline, nil
		e.lastIngest = p.Stats() // snapshot survives for Info
	}
	e.pipeMu.Unlock()
	if p == nil {
		return nil
	}
	cerr := p.Close()
	e.pipeMu.Lock()
	e.lastIngest = p.Stats()
	e.accumulateIngestLocked(e.lastIngest)
	e.pipeMu.Unlock()
	if cerr != nil {
		return fmt.Errorf("seqlog: draining ingestion stream: %w", cerr)
	}
	return nil
}

// accumulateIngestLocked folds a drained pipeline's counters into the
// engine-lifetime totals (pipeMu held). Only monotone counters accumulate;
// Queued/Sessions are instantaneous and belong to the live pipeline.
func (e *Engine) accumulateIngestLocked(st ingest.Stats) {
	e.ingestTotal.Accepted += st.Accepted
	e.ingestTotal.Flushed += st.Flushed
	e.ingestTotal.Batches += st.Batches
	e.ingestTotal.Syncs += st.Syncs
	e.ingestTotal.Stalls += st.Stalls
}

// ingestCumulative sums the counters of all drained pipelines with the live
// one, keeping the exported ingest counters monotone across stream restarts.
func (e *Engine) ingestCumulative() ingest.Stats {
	e.pipeMu.Lock()
	st := e.ingestTotal
	p := e.pipeline
	e.pipeMu.Unlock()
	if p != nil {
		live := p.Stats()
		st.Accepted += live.Accepted
		st.Flushed += live.Flushed
		st.Batches += live.Batches
		st.Syncs += live.Syncs
		st.Stalls += live.Stalls
		st.Queued = live.Queued
		st.Sessions = live.Sessions
	}
	return st
}

// liveIngest snapshots the open pipeline's counters, or zeros when no stream
// is open.
func (e *Engine) liveIngest() ingest.Stats {
	e.pipeMu.Lock()
	p := e.pipeline
	e.pipeMu.Unlock()
	if p == nil {
		return ingest.Stats{}
	}
	return p.Stats()
}

// closePipeline force-drains the stream on engine Close, regardless of open
// appenders.
func (e *Engine) closePipeline() error {
	e.pipeMu.Lock()
	p := e.pipeline
	e.pipeline = nil
	e.streams = 0
	e.pipeMu.Unlock()
	if p == nil {
		return nil
	}
	err := p.Close()
	e.pipeMu.Lock()
	e.lastIngest = p.Stats()
	e.accumulateIngestLocked(e.lastIngest)
	e.pipeMu.Unlock()
	return err
}

// IngestInfo returns the streaming-pipeline counters: live while a stream
// is open, the final snapshot after the last one drained, nil when
// streaming was never used. Unlike Info it touches no tables.
func (e *Engine) IngestInfo() *IngestStats { return e.ingestStats() }

// ingestStats returns the live pipeline counters, or the snapshot of the
// last drained stream, or nil when streaming was never used.
func (e *Engine) ingestStats() *IngestStats {
	e.pipeMu.Lock()
	defer e.pipeMu.Unlock()
	if e.pipeline != nil {
		st := IngestStats(e.pipeline.Stats())
		return &st
	}
	if e.lastIngest != (ingest.Stats{}) {
		st := IngestStats(e.lastIngest)
		return &st
	}
	return nil
}
