package seqlog

import (

	"errors"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

func streamEvents() []Event {
	return shopEvents()
}

// TestStreamEqualsIngest: the streaming facade must build the same index a
// serial Ingest would — detection results and stats agree.
func TestStreamEqualsIngest(t *testing.T) {
	serial := openMem(t, Config{})
	if _, err := serial.Ingest(streamEvents()); err != nil {
		t.Fatal(err)
	}

	streamed := openMem(t, Config{})
	a, err := streamed.OpenStream(StreamOptions{Workers: 3, FlushEvents: 4, FlushInterval: time.Millisecond, Block: true})
	if err != nil {
		t.Fatal(err)
	}
	evs := streamEvents()
	for _, ev := range evs { // one event per append: maximal chunking stress
		if err := a.Append([]Event{ev}); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.Flushed != int64(len(evs)) || st.Queued != 0 || st.Batches == 0 {
		t.Fatalf("stream stats %+v", st)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	for _, pat := range [][]string{{"search", "view", "cart"}, {"search", "pay"}, {"view", "view"}} {
		want, err1 := serial.Detect(pat)
		got, err2 := streamed.Detect(pat)
		if err1 != nil || err2 != nil || !reflect.DeepEqual(got, want) {
			t.Fatalf("pattern %v: streamed %v (%v) vs serial %v (%v)", pat, got, err2, want, err1)
		}
	}
	ws, err1 := serial.Stats([]string{"search", "view"})
	gs, err2 := streamed.Stats([]string{"search", "view"})
	if err1 != nil || err2 != nil || !reflect.DeepEqual(gs, ws) {
		t.Fatalf("stats diverge: %+v vs %+v", gs, ws)
	}
}

// TestStreamDurableAckAndReopen: events acknowledged by Flush on a durable
// engine survive an abrupt reopen — including alphabet entries persisted by
// the BeforeCommit hook inside the same group commit.
func TestStreamDurableAckAndReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	e, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	a, err := e.OpenStream(StreamOptions{FlushEvents: 4, FlushInterval: time.Millisecond, Block: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Append(streamEvents()); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.Syncs == 0 {
		t.Fatalf("durable flush did not sync: %+v", st)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	ids, err := re.DetectTraces([]string{"search", "view", "cart"})
	if err != nil || !reflect.DeepEqual(ids, []int64{1, 3}) {
		t.Fatalf("after reopen: traces = %v %v", ids, err)
	}
	if got := len(re.Activities()); got != 5 {
		t.Fatalf("alphabet lost across reopen: %d activities", got)
	}
}

// TestSerialIngestRoutesThroughOpenStream: while a stream is open, Ingest
// must feed the pipeline (resident sessions would otherwise miss writes).
func TestSerialIngestRoutesThroughOpenStream(t *testing.T) {
	e := openMem(t, Config{})
	a, err := e.OpenStream(StreamOptions{FlushEvents: 4, Block: true})
	if err != nil {
		t.Fatal(err)
	}
	evs := streamEvents()
	if err := a.Append(evs[:4]); err != nil {
		t.Fatal(err)
	}
	st, err := e.Ingest(evs[4:]) // serial API, stream open
	if err != nil {
		t.Fatal(err)
	}
	if st.Events != len(evs)-4 {
		t.Fatalf("routed stats = %+v", st)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	serial := openMem(t, Config{})
	if _, err := serial.Ingest(evs); err != nil {
		t.Fatal(err)
	}
	want, _ := serial.Detect([]string{"search", "pay"})
	got, err := e.Detect([]string{"search", "pay"})
	if err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("mixed-path index diverges: %v vs %v (%v)", got, want, err)
	}
}

// TestStreamInfoAndSharedPipeline: Info surfaces pipeline counters, second
// OpenStream joins the same pipeline, and the snapshot survives the drain.
func TestStreamInfoAndSharedPipeline(t *testing.T) {
	e := openMem(t, Config{})
	if info, _ := e.Info(); info.Ingest != nil {
		t.Fatalf("ingest stats before any stream: %+v", info.Ingest)
	}
	a1, err := e.OpenStream(StreamOptions{FlushEvents: 4, Block: true})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := e.OpenStream(StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	evs := streamEvents()
	wg.Add(2)
	go func() { defer wg.Done(); _ = a1.Append(evs[:6]) }()
	go func() { defer wg.Done(); _ = a2.Append(evs[6:]) }()
	wg.Wait()
	if err := a1.Close(); err != nil {
		t.Fatal(err)
	}
	// Pipeline still running: a2 keeps it alive.
	if err := a2.Flush(); err != nil {
		t.Fatal(err)
	}
	info, err := e.Info()
	if err != nil || info.Ingest == nil {
		t.Fatalf("info lacks live ingest stats: %+v %v", info.Ingest, err)
	}
	if info.Ingest.Flushed != int64(len(evs)) {
		t.Fatalf("flushed = %d, want %d", info.Ingest.Flushed, len(evs))
	}
	if err := a2.Close(); err != nil {
		t.Fatal(err)
	}
	info, err = e.Info()
	if err != nil || info.Ingest == nil || info.Ingest.Flushed != int64(len(evs)) {
		t.Fatalf("post-drain snapshot missing: %+v %v", info.Ingest, err)
	}
}

// TestStreamRejectsPartialOrder: the partial-order extractor is batch-only.
func TestStreamRejectsPartialOrder(t *testing.T) {
	e := openMem(t, Config{PartialOrder: true})
	if _, err := e.OpenStream(StreamOptions{}); err == nil {
		t.Fatal("partial-order stream accepted")
	}
}

// TestRotatePeriodBlockedWhileStreaming, and appender misuse.
func TestStreamGuards(t *testing.T) {
	e := openMem(t, Config{})
	a, err := e.OpenStream(StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RotatePeriod("p2"); err == nil {
		t.Fatal("rotate with open stream accepted")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Append(streamEvents()); err == nil {
		t.Fatal("append on closed appender accepted")
	}
	if err := e.RotatePeriod("p2"); err != nil {
		t.Fatalf("rotate after close: %v", err)
	}
}

// TestStreamOverloadedSurfaces: the typed backpressure error reaches the
// facade on a non-blocking stream.
func TestStreamOverloadedSurfaces(t *testing.T) {
	e := openMem(t, Config{})
	a, err := e.OpenStream(StreamOptions{FlushEvents: 2, QueueEvents: 4, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// Grab the engine lock so flushes stall and the queue stays full.
	e.mu.Lock()
	var sawOverload bool
	for i := 0; i < 50; i++ {
		err := a.Append([]Event{{Trace: 1, Activity: "x", Time: int64(i)}})
		if errors.Is(err, ErrOverloaded) {
			sawOverload = true
			break
		}
		if err != nil {
			e.mu.Unlock()
			t.Fatal(err)
		}
	}
	e.mu.Unlock()
	if !sawOverload {
		t.Fatal("queue never pushed back")
	}
}
