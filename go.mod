module seqlog

go 1.22
