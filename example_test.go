package seqlog_test

import (
	"fmt"
	"log"

	"seqlog"
)

func openWithSessions() *seqlog.Engine {
	eng, err := seqlog.Open(seqlog.Config{Policy: "STNM"})
	if err != nil {
		log.Fatal(err)
	}
	_, err = eng.Ingest([]seqlog.Event{
		{Trace: 1, Activity: "search", Time: 1}, {Trace: 1, Activity: "view", Time: 2},
		{Trace: 1, Activity: "buy", Time: 3},
		{Trace: 2, Activity: "search", Time: 1}, {Trace: 2, Activity: "exit", Time: 2},
		{Trace: 3, Activity: "search", Time: 1}, {Trace: 3, Activity: "view", Time: 2},
		{Trace: 3, Activity: "view", Time: 3}, {Trace: 3, Activity: "buy", Time: 9},
	})
	if err != nil {
		log.Fatal(err)
	}
	return eng
}

// Detect returns every completion of a pattern, skipping irrelevant events
// in between (skip-till-next-match).
func ExampleEngine_Detect() {
	eng := openWithSessions()
	defer eng.Close()

	matches, err := eng.Detect([]string{"search", "buy"})
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		fmt.Printf("trace %d: search@%d buy@%d\n", m.Trace, m.Times[0], m.Times[1])
	}
	// Output:
	// trace 1: search@1 buy@3
	// trace 3: search@1 buy@9
}

// Stats answers from precomputed pair statistics without touching traces.
func ExampleEngine_Stats() {
	eng := openWithSessions()
	defer eng.Close()

	st, err := eng.Stats([]string{"search", "view", "buy"})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range st.Pairs {
		fmt.Printf("%s->%s completions=%d\n", p.First, p.Second, p.Completions)
	}
	fmt.Printf("pattern bound=%d\n", st.MaxCompletions)
	// Output:
	// search->view completions=2
	// view->buy completions=2
	// pattern bound=2
}

// Explore ranks likely continuations of a pattern by Equation 1 of the
// paper (completions over average duration).
func ExampleEngine_Explore() {
	eng := openWithSessions()
	defer eng.Close()

	props, err := eng.Explore([]string{"search"}, seqlog.Accurate, seqlog.ExploreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range props {
		fmt.Printf("%s (%d completions)\n", p.Activity, p.Completions)
	}
	// Output:
	// view (2 completions)
	// exit (1 completions)
	// buy (2 completions)
}

// ExploreInsert completes a pattern at an arbitrary position — here: what
// typically happens between a search and a purchase?
func ExampleEngine_ExploreInsert() {
	eng := openWithSessions()
	defer eng.Close()

	props, err := eng.ExploreInsert([]string{"search", "buy"}, 1, seqlog.Accurate, seqlog.ExploreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range props {
		fmt.Printf("search -> %s -> buy (%d completions)\n", p.Activity, p.Completions)
	}
	// Output:
	// search -> view -> buy (2 completions)
}
