// Package seqlog detects arbitrary event sequences in large activity logs.
//
// It is a from-scratch Go implementation of the system described in
// "Sequence detection in event log files" (EDBT 2021): an inverted index of
// event-type pairs, maintained incrementally as new log batches arrive, that
// answers three families of pattern queries under two matching policies —
// strict contiguity (SC) and skip-till-next-match (STNM):
//
//   - Statistics: per-pair completion counts, average durations and last
//     completions, combined into bounds for the whole pattern.
//   - Pattern detection: all traces (and match timestamps) containing the
//     pattern, computed by joining inverted-index rows.
//   - Pattern continuation: the most likely next events after a pattern,
//     with an exact, a heuristic, and a hybrid strategy trading accuracy
//     for response time.
//
// The Engine is the entry point:
//
//	eng, err := seqlog.Open(seqlog.Config{Policy: "STNM"})
//	...
//	eng.Ingest([]seqlog.Event{{Trace: 1, Activity: "login", Time: 1000}, ...})
//	matches, err := eng.Detect([]string{"login", "checkout"})
//
// Indices live in an embedded key-value store: in memory by default, or on
// disk (write-ahead logged, crash-recoverable) when Config.Dir is set.
package seqlog

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"seqlog/internal/eventlog"
	"seqlog/internal/index"
	"seqlog/internal/ingest"
	"seqlog/internal/kvstore"
	"seqlog/internal/metrics"
	"seqlog/internal/model"
	"seqlog/internal/netshard"
	"seqlog/internal/pairs"
	"seqlog/internal/query"
	"seqlog/internal/replica"
	"seqlog/internal/shard"
	"seqlog/internal/storage"
)

// Config configures an Engine.
type Config struct {
	// Policy is the pair-indexing policy: "SC" or "STNM" (default "STNM").
	Policy string
	// Method is the STNM pair-extraction flavor: "parsing", "indexing" or
	// "state" (default "indexing", the paper's recommendation for
	// periodic batch updates).
	Method string
	// Workers bounds per-trace parallelism during ingestion; 0 uses all
	// cores.
	Workers int
	// Dir, when non-empty, stores the index durably in that directory
	// (write-ahead log + snapshots). Empty means in-memory.
	Dir string
	// Shards splits the index tables across that many independent stores
	// (each with its own WAL, snapshots and compaction): index rows route
	// by pair key, traces by affinity hash, and reads scatter-gather with
	// a deterministic merge, so results are identical at any shard count.
	// 0 or 1 keeps the classic single store. The count is pinned in the
	// store's metadata — reopening with a different value fails instead of
	// silently re-routing keys.
	Shards int
	// ShardDir, when non-empty, overrides where a sharded engine keeps its
	// shard-NNNN directories (default: Dir). Ignored when Shards <= 1.
	ShardDir string
	// ShardAddrs, when non-empty, opens the engine over remote shard
	// servers (cmd/seqshard) instead of local stores: one netshard client
	// per address, in shard order — the slice IS the placement map and must
	// be identical on every coordinator, since routing is a pure function
	// of (key, count, position). Storage-affecting options (Dir, ShardDir,
	// Segments, Salvage) then belong to the shard servers and must be left
	// unset. The shard count is still pinned in the (replicated) meta
	// table, so pointing a coordinator at a subset of an existing cluster
	// fails instead of silently re-routing keys.
	ShardAddrs []string
	// Period names the index partition new batches are written to; see
	// RotatePeriod.
	Period string
	// PartialOrder treats same-timestamp events of a trace as concurrent
	// (the §7 extension): such events never pair with each other and
	// detection steps must advance strictly in time. Requires the STNM
	// policy; batches may not reach back into stored timestamps.
	PartialOrder bool
	// Planner enables the selectivity-based join planner for Detect: pair
	// rows are intersected at the trace level before the Algorithm 2 join,
	// which can be an order of magnitude faster for long or skewed
	// patterns. Results are identical either way; off by default to match
	// the paper's left-to-right join.
	Planner bool
	// CacheBytes bounds the decoded-postings cache that keeps hot
	// inverted-index rows decoded and pre-sorted between queries: 0 uses
	// the default budget (64 MiB), a negative value disables caching.
	// Results are identical either way; only latency changes.
	CacheBytes int64
	// Segments enables the immutable postings tier on durable engines:
	// before each automatic compaction (and on Freeze), the inverted-index
	// rows are folded into a block-compressed, mmap-served segment file per
	// store, capping WAL replay and snapshot size as the index grows.
	// Requires Dir. Query results are identical either way. A directory
	// whose stores already reference segments reopens fine with Segments
	// off — only the freeze triggers are disabled — but never downgrades:
	// the on-disk format version is pinned once the first segment exists.
	Segments bool
	// QueryWorkers bounds the per-candidate fan-out of the continuation
	// queries (Accurate verification and the Hybrid re-check): 0 uses all
	// cores, 1 runs serially. Rankings are identical at any worker count.
	QueryWorkers int
	// Salvage switches durable-store recovery to quarantine-and-continue:
	// corrupt WAL or snapshot regions are skipped (and preserved in a
	// QUARANTINE file) instead of failing Open, and the engine reports
	// itself degraded through Recovery / Info. Without it, corruption fails
	// Open with kvstore.ErrCorruptWAL or kvstore.ErrCorruptSnapshot.
	Salvage bool
	// IngestWorkers is the default shard count of streaming ingestion
	// (OpenStream); 0 falls back to Workers, then to all cores.
	IngestWorkers int
	// FlushEvents is the default size trigger of a streaming flush.
	FlushEvents int
	// FlushInterval is the default age trigger of a streaming flush.
	FlushInterval time.Duration
	// IngestQueue bounds the streaming input queue (backpressure).
	IngestQueue int
	// IngestInflight caps how many streaming flush cycles may be past
	// extraction at once: 1 serializes commits (each cycle runs to
	// durability before the next is handed off), 0 or 2 pipelines them
	// (extraction and table writes of cycle N+1 overlap cycle N's fsync,
	// and back-to-back cycles on one store coalesce their fsyncs).
	IngestInflight int
	// SlowQueryThreshold, when positive, logs every query taking at least
	// this long as one structured line — family, pattern arity, rows
	// scanned, duration — to SlowQueryLog.
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives slow-query lines; nil means os.Stderr.
	SlowQueryLog io.Writer
	// ReadOnly rejects every local mutation (Ingest, PruneTraces,
	// RotatePeriod, DropPeriod, Freeze, OpenStream) with ErrReadOnly and
	// disables the segment-freeze compaction trigger. It is how a read
	// replica opens its store: the replication applier (StartFollower) is
	// then the store's only writer, so replicated and local writes can
	// never interleave. Queries are unaffected.
	ReadOnly bool
	// DisableMetrics turns the metrics registry off entirely: Metrics
	// returns nil and no layer records telemetry. It exists for the
	// metrics-overhead benchmark's uninstrumented baseline; production
	// deployments keep it false (the instrumented hot path is within noise
	// of the uninstrumented one — see BENCH_metrics_overhead.json).
	DisableMetrics bool
}

// Event is one public log record: an activity executed inside a trace at a
// point in time (milliseconds; any monotone clock works — positions are a
// valid fallback).
type Event struct {
	Trace    int64
	Activity string
	Time     int64
}

// Match is one detected pattern completion.
type Match struct {
	Trace int64
	// Times holds one timestamp per pattern event.
	Times []int64
}

// PairStats mirrors the Statistics query output for one consecutive pair.
type PairStats struct {
	First          string
	Second         string
	Completions    int64
	AvgDuration    float64
	LastCompletion int64
}

// PatternStats aggregates PairStats over a pattern.
type PatternStats struct {
	Pairs             []PairStats
	MaxCompletions    int64
	EstimatedDuration float64
}

// Proposal is one pattern-continuation candidate.
type Proposal struct {
	Activity    string
	Completions int64
	AvgDuration float64
	Score       float64
	Exact       bool
}

// UpdateStats summarises one ingestion batch.
type UpdateStats struct {
	Traces      int
	Events      int
	Pairs       int
	Occurrences int
}

// ExploreMode selects a continuation strategy.
type ExploreMode string

const (
	// Accurate verifies every candidate with a full detection (Alg. 3).
	Accurate ExploreMode = "accurate"
	// Fast uses only precomputed statistics (Alg. 4).
	Fast ExploreMode = "fast"
	// Hybrid re-checks the topK Fast candidates accurately (Alg. 5).
	Hybrid ExploreMode = "hybrid"
)

// ExploreOptions tune continuation queries.
type ExploreOptions struct {
	// TopK is the number of Fast candidates Hybrid re-checks.
	TopK int
	// MaxAvgGap drops candidates whose mean gap after the pattern
	// exceeds it (0 disables the constraint).
	MaxAvgGap float64
}

// Limits bounds the work of one query: MaxRows caps the rows it may examine,
// Partial turns budget exhaustion into graceful degradation (partial results
// plus a truncation marker) for the detect family. Attach with WithLimits;
// the zero value is unbounded. It is the engine-level alias of
// internal/query's limits, so servers and library callers share one type.
type Limits = query.Limits

// WithLimits attaches per-query work limits to ctx; pass the result to any
// ...Ctx query method.
func WithLimits(ctx context.Context, l Limits) context.Context {
	return query.WithLimits(ctx, l)
}

// ErrBudgetExceeded matches (errors.Is) every budget exhaustion; the error
// is a *BudgetError carrying the rows examined and elapsed time.
var ErrBudgetExceeded = query.ErrBudgetExceeded

// BudgetError is the typed budget-exhaustion error. Its Partial flag marks
// the graceful variant: results returned alongside it are a valid subset of
// the full answer.
type BudgetError = query.BudgetError

// Truncated reports whether err marks a gracefully truncated query — the
// accompanying results are valid partial results (a subset of the full
// answer), not garbage. It is the one error a ...Ctx method can return
// together with non-nil results.
func Truncated(err error) bool {
	var be *BudgetError
	return errors.As(err, &be) && be.Partial
}

// Engine is the top-level handle combining the pre-processing component and
// the query processor over one indexing database.
type Engine struct {
	mu       sync.Mutex      // serialises ingestion and alphabet persistence
	stores   []kvstore.Store // one per shard (length 1 unsharded)
	disks    []*kvstore.DiskStore // empty for in-memory engines
	tables   storage.Backend
	builder  *index.Builder
	proc     *query.Processor
	alphabet *model.Alphabet
	cfg      Config

	// Streaming ingestion (stream.go). pipeMu guards the pipeline handle
	// and refcount; persistedActs (under mu) tracks how much of the
	// alphabet is durable, so stream flushes persist it only on growth.
	pipeMu        sync.Mutex
	pipeline      *ingest.Pipeline
	streams       int
	lastIngest    ingest.Stats // snapshot of the last drained stream
	ingestTotal   ingest.Stats // counters accumulated over drained pipelines
	persistedActs int

	// Observability (metrics.go wiring lives in this file): the registry is
	// nil when Config.DisableMetrics is set; qdur/qerr hold the per-family
	// query histograms and error counters so the hot path never takes the
	// registry lock.
	// follower is non-nil once StartFollower wired this engine to a
	// primary; Close stops it before the stores shut down.
	follower *replica.Follower

	metrics    *metrics.Registry
	qdur       map[string]*metrics.Histogram
	qerr       map[string]*metrics.Counter
	qout       map[string]map[string]*metrics.Counter
	slowThresh time.Duration
	slowLog    *log.Logger
}

// Query families, the label values of seqlog_query_duration_seconds: the
// Statistics query, pattern detection (SC and STNM share the join), pattern
// continuation (Explore) and the §7 insert-position continuation.
const (
	famDetect  = "detect"
	famStats   = "stats"
	famExplore = "explore"
	famInsert  = "explore_insert"
)

func queryFamilies() []string {
	return []string{famDetect, famStats, famExplore, famInsert}
}

// Query outcomes, the label values of seqlog_query_outcomes_total: ok,
// generic error, context cancellation, deadline expiry, a hard budget trip,
// and a graceful (partial-results) truncation.
const (
	outOK        = "ok"
	outError     = "error"
	outCanceled  = "canceled"
	outDeadline  = "deadline"
	outBudget    = "budget"
	outTruncated = "truncated"
)

func queryOutcomes() []string {
	return []string{outOK, outError, outCanceled, outDeadline, outBudget, outTruncated}
}

// classifyOutcome maps a query error to its outcome label.
func classifyOutcome(err error) string {
	switch {
	case err == nil:
		return outOK
	case Truncated(err):
		return outTruncated
	case errors.Is(err, ErrBudgetExceeded):
		return outBudget
	case errors.Is(err, context.Canceled):
		return outCanceled
	case errors.Is(err, context.DeadlineExceeded):
		return outDeadline
	default:
		return outError
	}
}

const (
	metaPolicy   = "policy"
	metaAlphabet = "alphabet"
	metaPartial  = "partialorder"
	metaShards   = "shards"
)

// Open creates or reopens an engine. Reopening a durable directory restores
// the interned alphabet and verifies the policy matches the stored index.
func Open(cfg Config) (*Engine, error) {
	if cfg.Policy == "" {
		cfg.Policy = "STNM"
	}
	if cfg.Method == "" {
		cfg.Method = "indexing"
	}
	policy, err := model.ParsePolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}
	method, err := parseMethod(cfg.Method)
	if err != nil {
		return nil, err
	}

	var reg *metrics.Registry
	if !cfg.DisableMetrics {
		reg = metrics.New()
	}

	stores, disks, tables, err := openStores(cfg, reg)
	if err != nil {
		return nil, err
	}
	closeStores := func() {
		for _, s := range stores {
			s.Close()
		}
	}
	if cfg.CacheBytes != 0 {
		tables.SetCacheBudget(cfg.CacheBytes)
	}
	builder, err := index.NewBuilder(tables, index.Options{
		Policy: policy, Method: method, Workers: cfg.Workers, Period: cfg.Period,
		PartialOrder: cfg.PartialOrder,
	})
	if err != nil {
		closeStores()
		return nil, err
	}

	proc := query.NewProcessor(tables)
	proc.SetWorkers(cfg.QueryWorkers)
	e := &Engine{
		stores:   stores,
		disks:    disks,
		tables:   tables,
		builder:  builder,
		proc:     proc,
		alphabet: model.NewAlphabet(),
		cfg:      cfg,
		metrics:  reg,
	}
	if err := e.restoreMeta(policy); err != nil {
		closeStores()
		return nil, err
	}
	e.initMetrics()
	if cfg.SlowQueryThreshold > 0 {
		w := cfg.SlowQueryLog
		if w == nil {
			w = os.Stderr
		}
		e.slowThresh = cfg.SlowQueryThreshold
		e.slowLog = log.New(w, "", log.LstdFlags|log.LUTC)
	}
	return e, nil
}

// openStores opens the engine's store(s): one kvstore for Shards <= 1, or
// Shards independent stores — each a shard-NNNN subdirectory with its own
// WAL/snapshot/compaction when durable — wrapped in the sharded backend.
// Two layout guards fail fast instead of corrupting data: a sharded open of
// a directory holding a legacy single-store index, and a single-store open
// of a directory holding shard subdirectories.
func openStores(cfg Config, reg *metrics.Registry) ([]kvstore.Store, []*kvstore.DiskStore, storage.Backend, error) {
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	if len(cfg.ShardAddrs) > 0 {
		if cfg.Dir != "" || cfg.ShardDir != "" {
			return nil, nil, nil, fmt.Errorf("seqlog: Config.ShardAddrs and Config.Dir are exclusive (remote shard servers own their directories)")
		}
		if cfg.Segments {
			return nil, nil, nil, fmt.Errorf("seqlog: Config.Segments is managed by the shard servers; unset it with Config.ShardAddrs")
		}
		if cfg.Shards > 1 && cfg.Shards != len(cfg.ShardAddrs) {
			return nil, nil, nil, fmt.Errorf("seqlog: Config.Shards (%d) disagrees with len(Config.ShardAddrs) (%d)", cfg.Shards, len(cfg.ShardAddrs))
		}
		backends := make([]storage.Backend, len(cfg.ShardAddrs))
		closeBackends := func() {
			for _, b := range backends {
				if b != nil {
					b.Close()
				}
			}
		}
		for i, addr := range cfg.ShardAddrs {
			cl, err := netshard.Dial(addr, netshard.Options{Shard: i})
			if err != nil {
				closeBackends()
				return nil, nil, nil, fmt.Errorf("seqlog: shard %d: %w", i, err)
			}
			backends[i] = cl
		}
		st, err := shard.NewFromBackends(backends, shard.Options{Workers: cfg.QueryWorkers})
		if err != nil {
			closeBackends()
			return nil, nil, nil, err
		}
		return nil, nil, st, nil
	}
	if cfg.Segments && cfg.Dir == "" && cfg.ShardDir == "" {
		return nil, nil, nil, fmt.Errorf("seqlog: Config.Segments requires a durable directory (Config.Dir)")
	}
	if n == 1 {
		if cfg.Dir == "" {
			s := kvstore.NewMemStore()
			return []kvstore.Store{s}, nil, storage.NewTables(s), nil
		}
		if _, err := os.Stat(filepath.Join(cfg.Dir, shardDirName(0))); err == nil {
			return nil, nil, nil, fmt.Errorf("seqlog: %s holds a sharded index (found %s); set Config.Shards", cfg.Dir, shardDirName(0))
		}
		d, err := kvstore.OpenDiskWith(cfg.Dir, kvstore.DiskOptions{Salvage: cfg.Salvage, Metrics: reg})
		if err != nil {
			return nil, nil, nil, err
		}
		// The segment directory is always configured on durable opens — a
		// store already referencing a segment must load it regardless of
		// Config.Segments, which only controls the freeze triggers.
		tab, err := storage.OpenTables(d, storage.Options{SegmentDir: filepath.Join(cfg.Dir, segmentsDirName)})
		if err != nil {
			d.Close()
			return nil, nil, nil, err
		}
		if cfg.Segments && !cfg.ReadOnly {
			// A read-only replica must not freeze locally — its segment
			// files are shipped from the primary, and a divergent local
			// freeze would fork the two stores' contents.
			d.SetBeforeCompact(tab.FreezePostings)
		}
		return []kvstore.Store{d}, []*kvstore.DiskStore{d}, tab, nil
	}

	base := cfg.ShardDir
	if base == "" {
		base = cfg.Dir
	}
	var (
		stores []kvstore.Store
		disks  []*kvstore.DiskStore
	)
	closeAll := func() {
		for _, s := range stores {
			s.Close()
		}
	}
	var segDirs []string
	for i := 0; i < n; i++ {
		if base == "" {
			stores = append(stores, kvstore.NewMemStore())
			continue
		}
		if i == 0 {
			if _, err := os.Stat(filepath.Join(base, "WAL")); err == nil {
				return nil, nil, nil, fmt.Errorf("seqlog: %s holds a single-store index; open it without Config.Shards", base)
			}
		}
		dir := filepath.Join(base, shardDirName(i))
		d, err := kvstore.OpenDiskWith(dir, kvstore.DiskOptions{Salvage: cfg.Salvage, Metrics: reg})
		if err != nil {
			closeAll()
			return nil, nil, nil, err
		}
		stores = append(stores, d)
		disks = append(disks, d)
		segDirs = append(segDirs, filepath.Join(dir, segmentsDirName))
	}
	st, err := shard.New(stores, shard.Options{Workers: cfg.QueryWorkers, SegmentDirs: segDirs})
	if err != nil {
		closeAll()
		return nil, nil, nil, err
	}
	if cfg.Segments && !cfg.ReadOnly {
		for i, d := range disks {
			d.SetBeforeCompact(st.Shard(i).FreezePostings)
		}
	}
	return stores, disks, st, nil
}

// shardDirName names shard i's subdirectory. Zero-padding keeps directory
// listings in shard order.
func shardDirName(i int) string { return fmt.Sprintf("shard-%04d", i) }

// segmentsDirName is the per-store subdirectory holding immutable postings
// segment files.
const segmentsDirName = "segments"

// Metrics returns the engine's telemetry registry — per-family query latency
// histograms, WAL/cache/ingest counters — or nil when Config.DisableMetrics
// is set. The HTTP server exposes it as GET /metrics.
func (e *Engine) Metrics() *metrics.Registry { return e.metrics }

// initMetrics builds the per-family query series and registers the
// function-backed metrics that delegate to the subsystems' own counters, so
// the registry never becomes a second (driftable) source of truth.
func (e *Engine) initMetrics() {
	if e.metrics == nil {
		return
	}
	e.qdur = make(map[string]*metrics.Histogram, 4)
	e.qerr = make(map[string]*metrics.Counter, 4)
	e.qout = make(map[string]map[string]*metrics.Counter, 4)
	for _, fam := range queryFamilies() {
		l := metrics.Label{Key: "family", Value: fam}
		e.qdur[fam] = e.metrics.Histogram("seqlog_query_duration_seconds", l)
		e.qerr[fam] = e.metrics.Counter("seqlog_query_errors_total", l)
		outs := make(map[string]*metrics.Counter, 6)
		for _, out := range queryOutcomes() {
			outs[out] = e.metrics.Counter("seqlog_query_outcomes_total",
				l, metrics.Label{Key: "outcome", Value: out})
		}
		e.qout[fam] = outs
	}
	e.tables.SetMetrics(e.metrics)
	e.metrics.GaugeFunc("seqlog_activities", func() int64 {
		return int64(e.alphabet.Len())
	})
	e.metrics.GaugeFunc("seqlog_traces", func() int64 {
		n, err := e.tables.NumTraces(context.Background())
		if err != nil {
			return -1
		}
		return int64(n)
	})
	// Recovery is a fact about this open, not a moving value: set once.
	rec := e.Recovery()
	e.metrics.Gauge("seqlog_recovery_wal_replayed").Set(rec.WALReplayed)
	e.metrics.Gauge("seqlog_recovery_dropped_regions").Set(rec.DroppedRegions)
	var salv int64
	if rec.Salvaged {
		salv = 1
	}
	e.metrics.Gauge("seqlog_recovery_salvaged").Set(salv)
	// Streaming-ingest counters stay monotone across pipeline restarts:
	// ingestCumulative folds drained pipelines into the live one.
	cum := func(pick func(ingest.Stats) int64) func() int64 {
		return func() int64 { return pick(e.ingestCumulative()) }
	}
	e.metrics.CounterFunc("seqlog_ingest_accepted_total", cum(func(s ingest.Stats) int64 { return s.Accepted }))
	e.metrics.CounterFunc("seqlog_ingest_flushed_total", cum(func(s ingest.Stats) int64 { return s.Flushed }))
	e.metrics.CounterFunc("seqlog_ingest_batches_total", cum(func(s ingest.Stats) int64 { return s.Batches }))
	e.metrics.CounterFunc("seqlog_ingest_syncs_total", cum(func(s ingest.Stats) int64 { return s.Syncs }))
	e.metrics.CounterFunc("seqlog_ingest_stalls_total", cum(func(s ingest.Stats) int64 { return s.Stalls }))
	e.metrics.GaugeFunc("seqlog_ingest_queued", func() int64 { return e.liveIngest().Queued })
	e.metrics.GaugeFunc("seqlog_ingest_sessions", func() int64 { return e.liveIngest().Sessions })
}

var noopTrack = func(*error) {}

// track begins one query observation; defer the returned func with the
// method's named error:
//
//	defer e.track(famDetect, len(pattern))(&err)
//
// It feeds the per-family latency histogram and error counter, and — when a
// slow-query threshold is configured — emits one structured line with the
// family, pattern arity, rows scanned and duration. Rows scanned is a delta
// of the process-wide row counter: exact for serial queries, an approximation
// when queries overlap.
func (e *Engine) track(family string, arity int) func(*error) {
	if e.metrics == nil && e.slowThresh <= 0 {
		return noopTrack
	}
	start := time.Now()
	rows0 := e.tables.ReadRows()
	return func(errp *error) {
		d := time.Since(start)
		e.qdur[family].Observe(d) // nil when metrics are off: a safe no-op
		out := classifyOutcome(*errp)
		if c := e.qout[family][out]; c != nil {
			c.Add(1)
		}
		// Graceful truncation returned valid results; only real failures
		// count as errors.
		if *errp != nil && out != outTruncated {
			e.qerr[family].Add(1)
		}
		if e.slowLog != nil && d >= e.slowThresh {
			rows := e.tables.ReadRows() - rows0
			// On a replica the replication position contextualises the
			// line: a slow query during a resync or far behind the primary
			// reads differently from one on a caught-up follower.
			repl := ""
			if st := e.Replication(); st != nil {
				repl = fmt.Sprintf(" role=follower repl_state=%s repl_lag=%d", st.State, st.LagBytes)
			}
			if *errp != nil {
				e.slowLog.Printf("slow-query family=%s arity=%d rows=%d duration=%s%s err=%q",
					family, arity, rows, d, repl, (*errp).Error())
			} else {
				e.slowLog.Printf("slow-query family=%s arity=%d rows=%d duration=%s%s",
					family, arity, rows, d, repl)
			}
		}
	}
}

func parseMethod(s string) (pairs.Method, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "parsing":
		return pairs.Parsing, nil
	case "indexing":
		return pairs.Indexing, nil
	case "state":
		return pairs.State, nil
	default:
		return 0, fmt.Errorf("seqlog: unknown method %q (want parsing, indexing or state)", s)
	}
}

func (e *Engine) restoreMeta(policy model.Policy) error {
	raw, ok, err := e.tables.GetMeta(metaPolicy)
	if err != nil {
		return err
	}
	if ok {
		stored, err := model.ParsePolicy(string(raw))
		if err != nil {
			return err
		}
		if stored != policy {
			return fmt.Errorf("seqlog: store was indexed with policy %v, engine configured for %v", stored, policy)
		}
	} else if err := e.tables.PutMeta(metaPolicy, []byte(policy.String())); err != nil {
		return err
	}
	mode := "total"
	if e.cfg.PartialOrder {
		mode = "partial"
	}
	raw, ok, err = e.tables.GetMeta(metaPartial)
	if err != nil {
		return err
	}
	if ok {
		if string(raw) != mode {
			return fmt.Errorf("seqlog: store was indexed with %s order, engine configured for %s", raw, mode)
		}
	} else if err := e.tables.PutMeta(metaPartial, []byte(mode)); err != nil {
		return err
	}
	// Pin the shard count: the routing hash is a pure function of (key,
	// shards), so reopening with a different count would silently look up
	// keys on the wrong shard. (Written on first open; legacy single-store
	// directories without the key are adopted as 1.)
	shards := strconv.Itoa(e.tables.NumShards())
	raw, ok, err = e.tables.GetMeta(metaShards)
	if err != nil {
		return err
	}
	if ok {
		if string(raw) != shards {
			return fmt.Errorf("seqlog: store was created with %s shard(s), engine configured for %s", raw, shards)
		}
	} else if err := e.tables.PutMeta(metaShards, []byte(shards)); err != nil {
		return err
	}
	raw, ok, err = e.tables.GetMeta(metaAlphabet)
	if err != nil {
		return err
	}
	if ok && len(raw) > 0 {
		for _, name := range strings.Split(string(raw), "\x00") {
			e.alphabet.ID(name)
		}
	}
	e.persistedActs = e.alphabet.Len()
	return nil
}

func (e *Engine) persistAlphabet() error {
	return e.tables.PutMeta(metaAlphabet, []byte(strings.Join(e.alphabet.Names(), "\x00")))
}

// Ingest indexes a batch of new events (the periodic update of §3.1.3).
// Events may extend traces seen in earlier batches; the index never
// duplicates pairs across batches.
//
// While a stream is open (OpenStream) the batch is routed through the
// pipeline instead — its resident sessions must observe every write — and
// acknowledged after a full flush, preserving the durability contract. On
// that path only the Events counter of the returned stats is populated.
func (e *Engine) Ingest(events []Event) (UpdateStats, error) {
	return e.IngestCtx(context.Background(), events)
}

// IngestCtx is Ingest with a caller context. On the streaming path the
// admission wait and the flush wait are cancellable; on the batch path the
// context is only checked up front — a started batch update always commits
// or fails whole, never half.
func (e *Engine) IngestCtx(ctx context.Context, events []Event) (UpdateStats, error) {
	if err := e.readOnlyErr(); err != nil {
		return UpdateStats{}, err
	}
	e.pipeMu.Lock()
	p := e.pipeline
	e.pipeMu.Unlock()
	if p != nil {
		if err := p.AppendCtx(ctx, e.intern(events)); err != nil {
			return UpdateStats{}, err
		}
		if err := p.FlushCtx(ctx); err != nil {
			return UpdateStats{}, err
		}
		return UpdateStats{Events: len(events)}, nil
	}
	if err := ctx.Err(); err != nil {
		return UpdateStats{}, err
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	batch := make([]model.Event, len(events))
	before := e.alphabet.Len()
	for i, ev := range events {
		batch[i] = model.Event{
			Trace:    model.TraceID(ev.Trace),
			Activity: e.alphabet.ID(ev.Activity),
			TS:       model.Timestamp(ev.Time),
		}
	}
	st, err := e.builder.Update(batch)
	if err != nil {
		return UpdateStats{}, err
	}
	if e.alphabet.Len() != before {
		if err := e.persistAlphabet(); err != nil {
			return UpdateStats{}, err
		}
		e.persistedActs = e.alphabet.Len()
	}
	if err := e.syncDisks(); err != nil {
		return UpdateStats{}, err
	}
	return UpdateStats(st), nil
}

// syncDisks flushes and fsyncs every durable shard's WAL (no-op in memory).
// Engines over remote shard servers have no local disks; the sync request
// forwards through the backend to each shard server's store instead.
func (e *Engine) syncDisks() error {
	for _, d := range e.disks {
		if err := d.Sync(); err != nil {
			return err
		}
	}
	if len(e.disks) == 0 {
		if sy, ok := e.tables.(interface{ Sync() error }); ok {
			return sy.Sync()
		}
	}
	return nil
}

// IngestXES reads an XES document and ingests all its events as one batch.
func (e *Engine) IngestXES(r io.Reader) (UpdateStats, error) {
	log, err := eventlog.ReadXES(r)
	if err != nil {
		return UpdateStats{}, err
	}
	return e.ingestModelLog(log)
}

// IngestCSV reads trace,activity,timestamp rows and ingests them as one
// batch.
func (e *Engine) IngestCSV(r io.Reader) (UpdateStats, error) {
	log, err := eventlog.ReadCSV(r)
	if err != nil {
		return UpdateStats{}, err
	}
	return e.ingestModelLog(log)
}

func (e *Engine) ingestModelLog(log *model.Log) (UpdateStats, error) {
	names := log.Alphabet.Names()
	events := make([]Event, 0, log.NumEvents())
	for _, tr := range log.Traces {
		for _, ev := range tr.Events {
			events = append(events, Event{Trace: int64(tr.ID), Activity: names[ev.Activity], Time: int64(ev.TS)})
		}
	}
	return e.Ingest(events)
}

// pattern resolves names without interning; ok=false means some activity has
// never been ingested, so the pattern cannot occur. A lookup miss first
// re-reads the persisted alphabet: over a shared backend (a netshard fleet,
// DESIGN.md §13) another engine may have interned the activity after this
// one opened — without the reload a read-only query front-end would answer
// "never ingested" forever. The reload is one point meta read on the miss
// path only, and a no-op for exclusively-owned local stores, whose in-memory
// alphabet never trails the persisted one.
func (e *Engine) pattern(names []string) (model.Pattern, bool, error) {
	if len(names) == 0 {
		return nil, false, errors.New("seqlog: empty pattern")
	}
	if p, ok := model.LookupPattern(e.alphabet, names); ok {
		return p, true, nil
	}
	if err := e.reloadAlphabet(); err != nil {
		return nil, false, err
	}
	p, ok := model.LookupPattern(e.alphabet, names)
	return p, ok, nil
}

// reloadAlphabet re-interns the persisted alphabet. Writers persist names in
// ID order and only ever append, so every persisted list extends the one
// this engine last saw — replaying the full list keeps local IDs aligned
// with the store and with every other engine over the same backend.
func (e *Engine) reloadAlphabet() error {
	raw, ok, err := e.tables.GetMeta(metaAlphabet)
	if err != nil || !ok || len(raw) == 0 {
		return err
	}
	for _, name := range strings.Split(string(raw), "\x00") {
		e.alphabet.ID(name)
	}
	return nil
}

// Detect returns every completion of the pattern in the indexed log
// (Algorithm 2). The pattern needs at least two activities.
func (e *Engine) Detect(patternNames []string) ([]Match, error) {
	return e.DetectCtx(context.Background(), patternNames)
}

// DetectCtx is Detect with a caller context: cancellation and deadlines
// abort the join at its next cooperative check, and limits attached with
// WithLimits bound its work. Under Limits.Partial a tripped budget returns
// the matches found so far together with a *BudgetError for which
// Truncated(err) is true.
func (e *Engine) DetectCtx(ctx context.Context, patternNames []string) (_ []Match, err error) {
	defer e.track(famDetect, len(patternNames))(&err)
	p, ok, err := e.pattern(patternNames)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	var ms []query.Match
	if e.cfg.Planner {
		ms, err = e.proc.DetectPlanned(ctx, p)
	} else {
		ms, err = e.proc.Detect(ctx, p)
	}
	if err != nil && !Truncated(err) {
		return nil, err
	}
	return convertMatches(ms), err
}

// DetectTraces returns the distinct trace ids containing the pattern.
func (e *Engine) DetectTraces(patternNames []string) ([]int64, error) {
	return e.DetectTracesCtx(context.Background(), patternNames)
}

// DetectTracesCtx is DetectTraces with a caller context (see DetectCtx).
func (e *Engine) DetectTracesCtx(ctx context.Context, patternNames []string) (_ []int64, err error) {
	defer e.track(famDetect, len(patternNames))(&err)
	p, ok, err := e.pattern(patternNames)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	ids, err := e.proc.DetectTraces(ctx, p)
	if err != nil && !Truncated(err) {
		return nil, err
	}
	out := make([]int64, len(ids))
	for i, id := range ids {
		out[i] = int64(id)
	}
	return out, err
}

// DetectWithin is Detect constrained to completions whose total span does
// not exceed withinMS milliseconds (the WITHIN clause of CEP languages);
// over-window chains are pruned during the join.
func (e *Engine) DetectWithin(patternNames []string, withinMS int64) ([]Match, error) {
	return e.DetectWithinCtx(context.Background(), patternNames, withinMS)
}

// DetectWithinCtx is DetectWithin with a caller context (see DetectCtx).
func (e *Engine) DetectWithinCtx(ctx context.Context, patternNames []string, withinMS int64) (_ []Match, err error) {
	defer e.track(famDetect, len(patternNames))(&err)
	p, ok, err := e.pattern(patternNames)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	ms, err := e.proc.DetectWithin(ctx, p, withinMS)
	if err != nil && !Truncated(err) {
		return nil, err
	}
	return convertMatches(ms), err
}

// DetectScan answers the detection query by scanning stored traces instead
// of joining index rows: exact for both policies, slower on large logs. The
// policy is the engine's configured one.
func (e *Engine) DetectScan(patternNames []string) ([]Match, error) {
	return e.DetectScanCtx(context.Background(), patternNames)
}

// DetectScanCtx is DetectScan with a caller context (see DetectCtx). Under
// Limits.Partial a tripped budget returns the matches of a prefix of the
// trace scan plus a Truncated error.
func (e *Engine) DetectScanCtx(ctx context.Context, patternNames []string) (_ []Match, err error) {
	defer e.track(famDetect, len(patternNames))(&err)
	p, ok, err := e.pattern(patternNames)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	var ms []query.Match
	if e.cfg.PartialOrder {
		ms, err = e.proc.DetectScanPartial(ctx, p)
	} else {
		ms, err = e.proc.DetectScan(ctx, p, e.builder.Options().Policy)
	}
	if err != nil && !Truncated(err) {
		return nil, err
	}
	return convertMatches(ms), err
}

func convertMatches(ms []query.Match) []Match {
	out := make([]Match, len(ms))
	for i, m := range ms {
		times := make([]int64, len(m.Timestamps))
		for j, ts := range m.Timestamps {
			times[j] = int64(ts)
		}
		out[i] = Match{Trace: int64(m.Trace), Times: times}
	}
	return out
}

// Stats answers the Statistics query for the pattern.
func (e *Engine) Stats(patternNames []string) (PatternStats, error) {
	return e.StatsCtx(context.Background(), patternNames)
}

// StatsCtx is Stats with a caller context. Aggregates cannot be soundly
// truncated, so under a budget this family always errors — Limits.Partial
// is ignored here.
func (e *Engine) StatsCtx(ctx context.Context, patternNames []string) (_ PatternStats, err error) {
	defer e.track(famStats, len(patternNames))(&err)
	p, ok, err := e.pattern(patternNames)
	if err != nil {
		return PatternStats{}, err
	}
	if !ok {
		// Unknown activities: the pattern provably has zero completions.
		return PatternStats{}, nil
	}
	st, err := e.proc.Stats(ctx, p)
	if err != nil {
		return PatternStats{}, err
	}
	return e.convertStats(st), nil
}

func (e *Engine) convertStats(st query.PatternStats) PatternStats {
	out := PatternStats{
		MaxCompletions:    st.MaxCompletions,
		EstimatedDuration: st.EstimatedDuration,
	}
	for _, ps := range st.Pairs {
		out.Pairs = append(out.Pairs, PairStats{
			First:          e.alphabet.Name(ps.First),
			Second:         e.alphabet.Name(ps.Second),
			Completions:    ps.Completions,
			AvgDuration:    ps.AvgDuration,
			LastCompletion: int64(ps.LastCompletion),
		})
	}
	return out
}

// StatsAllPairs is Stats over every ordered pair of the pattern instead of
// the consecutive ones only: a tighter (never looser) bound on the number
// of non-overlapping pattern completions, at quadratically more row reads
// (§3.2.1's accuracy/running-time trade-off).
func (e *Engine) StatsAllPairs(patternNames []string) (PatternStats, error) {
	return e.StatsAllPairsCtx(context.Background(), patternNames)
}

// StatsAllPairsCtx is StatsAllPairs with a caller context (see StatsCtx).
func (e *Engine) StatsAllPairsCtx(ctx context.Context, patternNames []string) (_ PatternStats, err error) {
	defer e.track(famStats, len(patternNames))(&err)
	p, ok, err := e.pattern(patternNames)
	if err != nil {
		return PatternStats{}, err
	}
	if !ok {
		return PatternStats{}, nil
	}
	st, err := e.proc.StatsAllPairs(ctx, p)
	if err != nil {
		return PatternStats{}, err
	}
	return e.convertStats(st), nil
}

// Explore answers the pattern-continuation query with the chosen strategy.
func (e *Engine) Explore(patternNames []string, mode ExploreMode, opts ExploreOptions) ([]Proposal, error) {
	return e.ExploreCtx(context.Background(), patternNames, mode, opts)
}

// ExploreCtx is Explore with a caller context. Rankings cannot be soundly
// truncated, so under a budget this family always errors — the budget
// applies to each candidate verification (see StatsCtx for the aggregate
// rationale).
func (e *Engine) ExploreCtx(ctx context.Context, patternNames []string, mode ExploreMode, opts ExploreOptions) (_ []Proposal, err error) {
	defer e.track(famExplore, len(patternNames))(&err)
	p, ok, err := e.pattern(patternNames)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	qopts := query.ExploreOptions{TopK: opts.TopK, MaxAvgGap: opts.MaxAvgGap}
	var props []query.Proposal
	switch mode {
	case Accurate:
		props, err = e.proc.ExploreAccurate(ctx, p, qopts)
	case Fast:
		props, err = e.proc.ExploreFast(ctx, p, qopts)
	case Hybrid:
		props, err = e.proc.ExploreHybrid(ctx, p, qopts)
	default:
		return nil, fmt.Errorf("seqlog: unknown explore mode %q", mode)
	}
	if err != nil {
		return nil, err
	}
	out := make([]Proposal, len(props))
	for i, pr := range props {
		out[i] = Proposal{
			Activity:    e.alphabet.Name(pr.Event),
			Completions: pr.Completions,
			AvgDuration: pr.AvgDuration,
			Score:       pr.Score,
			Exact:       pr.Exact,
		}
	}
	return out, nil
}

// ExploreInsert proposes events to insert into the pattern at the given
// position (0 = before the first event, len(pattern) = append) — the §7
// extension of the paper for completing patterns at arbitrary places.
func (e *Engine) ExploreInsert(patternNames []string, pos int, mode ExploreMode, opts ExploreOptions) ([]Proposal, error) {
	return e.ExploreInsertCtx(context.Background(), patternNames, pos, mode, opts)
}

// ExploreInsertCtx is ExploreInsert with a caller context (see ExploreCtx).
func (e *Engine) ExploreInsertCtx(ctx context.Context, patternNames []string, pos int, mode ExploreMode, opts ExploreOptions) (_ []Proposal, err error) {
	defer e.track(famInsert, len(patternNames))(&err)
	p, ok, err := e.pattern(patternNames)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	qopts := query.ExploreOptions{TopK: opts.TopK, MaxAvgGap: opts.MaxAvgGap}
	var props []query.Proposal
	switch mode {
	case Accurate:
		props, err = e.proc.ExploreInsertAccurate(ctx, p, pos, qopts)
	case Fast:
		props, err = e.proc.ExploreInsertFast(ctx, p, pos, qopts)
	case Hybrid:
		props, err = e.proc.ExploreInsertHybrid(ctx, p, pos, qopts)
	default:
		return nil, fmt.Errorf("seqlog: unknown explore mode %q", mode)
	}
	if err != nil {
		return nil, err
	}
	out := make([]Proposal, len(props))
	for i, pr := range props {
		out[i] = Proposal{
			Activity:    e.alphabet.Name(pr.Event),
			Completions: pr.Completions,
			AvgDuration: pr.AvgDuration,
			Score:       pr.Score,
			Exact:       pr.Exact,
		}
	}
	return out, nil
}

// PruneTraces forgets the mutable state of completed traces (their Seq rows
// and LastChecked watermarks); their history stays queryable in the index.
func (e *Engine) PruneTraces(ids []int64) error {
	if err := e.readOnlyErr(); err != nil {
		return err
	}
	conv := make([]model.TraceID, len(ids))
	for i, id := range ids {
		conv[i] = model.TraceID(id)
	}
	// Flush the stream first so pending events of the pruned traces are
	// committed (not resurrected by a later flush), then drop their
	// resident sessions.
	e.pipeMu.Lock()
	p := e.pipeline
	e.pipeMu.Unlock()
	if p != nil {
		if err := p.Flush(); err != nil {
			return err
		}
	}
	e.mu.Lock()
	err := e.builder.PruneTraces(conv)
	e.mu.Unlock()
	if err == nil && p != nil {
		p.Forget(conv)
	}
	return err
}

// RotatePeriod directs subsequent batches into a new index partition
// (§3.1.3 suggests e.g. one per month); queries keep spanning all
// partitions.
func (e *Engine) RotatePeriod(period string) error {
	if err := e.readOnlyErr(); err != nil {
		return err
	}
	e.pipeMu.Lock()
	streaming := e.pipeline != nil
	e.pipeMu.Unlock()
	if streaming {
		return errors.New("seqlog: close ingestion streams before rotating the period")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	b, err := index.NewBuilder(e.tables, index.Options{
		Policy:       e.builder.Options().Policy,
		Method:       e.builder.Options().Method,
		Workers:      e.cfg.Workers,
		Period:       period,
		PartialOrder: e.cfg.PartialOrder,
	})
	if err != nil {
		return err
	}
	e.builder = b
	e.cfg.Period = period
	return nil
}

// DropPeriod retires a whole index partition.
func (e *Engine) DropPeriod(period string) error {
	if err := e.readOnlyErr(); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tables.DropPeriod(period)
}

// Periods lists the named index partitions.
func (e *Engine) Periods() ([]string, error) { return e.tables.Periods(context.Background()) }

// TraceEvents returns the stored (unpruned) event sequence of a trace.
func (e *Engine) TraceEvents(id int64) ([]Event, bool, error) {
	events, ok, err := e.tables.GetSeq(context.Background(), model.TraceID(id))
	if err != nil || !ok {
		return nil, false, err
	}
	out := make([]Event, len(events))
	for i, ev := range events {
		out[i] = Event{Trace: id, Activity: e.alphabet.Name(ev.Activity), Time: int64(ev.TS)}
	}
	return out, true, nil
}

// CacheStats are the decoded-postings cache counters of the query hot path.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int64 `json:"entries"`
	Bytes     int64 `json:"bytes"`
}

// CacheStats reports the postings-cache counters (all zero when the cache
// is disabled via Config.CacheBytes < 0).
func (e *Engine) CacheStats() CacheStats {
	return CacheStats(e.tables.CacheStats())
}

// SegmentStats describes the immutable postings tier of a durable engine:
// how many segment files are live (one per store once frozen), the runs,
// entries and bytes they hold, and how many freezes produced a new segment
// since open.
type SegmentStats struct {
	Segments int   `json:"segments"`
	Rows     int64 `json:"rows"`
	Entries  int64 `json:"entries"`
	Bytes    int64 `json:"bytes"`
	Freezes  int64 `json:"freezes"`
}

// SegmentStats reports the immutable-tier shape (all zero before the first
// freeze or on in-memory engines).
func (e *Engine) SegmentStats() SegmentStats {
	return SegmentStats(e.tables.SegmentStats())
}

// RecoveryInfo describes what crash recovery found when a durable engine
// was opened; the zero value means a clean start (or an in-memory engine).
type RecoveryInfo struct {
	SnapshotRecords int64 `json:"snapshotRecords,omitempty"`
	WALReplayed     int64 `json:"walReplayed,omitempty"`
	TornTailBytes   int64 `json:"tornTailBytes,omitempty"`
	StaleWALBytes   int64 `json:"staleWALBytes,omitempty"`
	DroppedRegions  int64 `json:"droppedRegions,omitempty"`
	DroppedBytes    int64 `json:"droppedBytes,omitempty"`

	// UncommittedBatchBytes counts WAL bytes of ingest group-commits whose
	// commit marker never made it to disk; they are rolled back on open.
	UncommittedBatchBytes int64 `json:"uncommittedBatchBytes,omitempty"`

	Salvaged bool `json:"salvaged,omitempty"`
}

// Degraded reports whether recovery lost possibly-committed data (only ever
// true after a Salvage open).
func (r RecoveryInfo) Degraded() bool { return r.Salvaged }

// Recovery reports the crash-recovery outcome of this engine's store.
func (e *Engine) Recovery() RecoveryInfo {
	return RecoveryInfo(e.tables.Recovery())
}

// IndexInfo summarises the indexing database: live traces, activities, the
// distinct-pair count of every partition, the postings-cache counters and
// the crash-recovery outcome.
type IndexInfo struct {
	Traces     int            `json:"traces"`
	Activities int            `json:"activities"`
	Policy     string         `json:"policy"`
	Shards     int            `json:"shards"`
	Partitions map[string]int `json:"partitions"` // partition -> distinct pairs ("" = default)
	Cache      CacheStats     `json:"cache"`
	// Segments describes the immutable postings tier (all zero when no
	// freeze has run).
	Segments SegmentStats `json:"segments"`
	Recovery RecoveryInfo `json:"recovery"`
	Degraded bool         `json:"degraded"`
	// Ingest reports the streaming-pipeline counters: live while a stream
	// is open, the final snapshot after it drained, nil when streaming was
	// never used.
	Ingest *IngestStats `json:"ingest,omitempty"`
	// Role is this engine's replication role: "follower" while tailing a
	// primary, "primary" otherwise.
	Role string `json:"role"`
	// Replication is the follower's position (nil on a primary).
	Replication *replica.Stats `json:"replication,omitempty"`
}

// Info reports the current index shape.
func (e *Engine) Info() (IndexInfo, error) {
	info := IndexInfo{
		Activities: e.alphabet.Len(),
		Policy:     e.builder.Options().Policy.String(),
		Shards:     e.tables.NumShards(),
		Partitions: make(map[string]int),
		Cache:      e.CacheStats(),
		Segments:   SegmentStats(e.tables.SegmentStats()),
		Recovery:    e.Recovery(),
		Ingest:      e.ingestStats(),
		Role:        e.Role(),
		Replication: e.Replication(),
	}
	info.Degraded = info.Recovery.Degraded()
	ctx := context.Background()
	var err error
	if info.Traces, err = e.tables.NumTraces(ctx); err != nil {
		return IndexInfo{}, err
	}
	n, err := e.tables.NumIndexedPairs(ctx, "")
	if err != nil {
		return IndexInfo{}, err
	}
	if n > 0 {
		info.Partitions[""] = n
	}
	periods, err := e.tables.Periods(ctx)
	if err != nil {
		return IndexInfo{}, err
	}
	for _, p := range periods {
		if n, err = e.tables.NumIndexedPairs(ctx, p); err != nil {
			return IndexInfo{}, err
		}
		info.Partitions[p] = n
	}
	return info, nil
}

// Activities returns all activity names seen so far.
func (e *Engine) Activities() []string { return e.alphabet.Names() }

// NumTraces returns the number of live (unpruned) traces.
func (e *Engine) NumTraces() (int, error) { return e.tables.NumTraces(context.Background()) }

// Compact folds every durable store into a fresh snapshot (no-op in
// memory). On a sharded engine the shards compact independently, one after
// the other, so at most one shard's write path is stalled at a time. With
// Config.Segments, postings are frozen into segment files first, so the
// snapshot shrinks to metadata and sequences.
func (e *Engine) Compact() error {
	if e.cfg.Segments && !e.cfg.ReadOnly {
		// A read replica never freezes locally: its segment files must stay
		// byte-identical to the primary's, and the store-level compaction
		// below is local housekeeping that does not change contents.
		if err := e.Freeze(); err != nil {
			return err
		}
	}
	for _, d := range e.disks {
		if err := d.Compact(); err != nil {
			return err
		}
	}
	return nil
}

// Freeze folds the memtable postings tier of every store into an immutable
// block-compressed segment file (see Config.Segments), atomically switching
// each store's reference and dropping the folded rows from its WAL-backed
// state. Queries are answered consistently throughout; a crash at any point
// loses nothing. Returns storage.ErrSegmentsDisabled on engines without a
// durable directory.
func (e *Engine) Freeze() error {
	if err := e.readOnlyErr(); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tables.FreezePostings()
}

// Sync flushes and fsyncs the write-ahead log(s) (no-op in memory). Ingest
// already syncs before acknowledging a batch; Sync exists for callers that
// need a durability point outside ingestion, such as server shutdown.
func (e *Engine) Sync() error { return e.syncDisks() }

// Close releases the engine. An open ingestion stream is drained with a
// final group commit first; durable engines then flush their write-ahead
// log. Every shard is closed even if one fails; the first error wins.
func (e *Engine) Close() error {
	// Stop pulling from the primary first: the applier must not race the
	// store shutdown below.
	if e.follower != nil {
		e.follower.Stop()
	}
	perr := e.closePipeline()
	var serr error
	for _, s := range e.stores {
		if err := s.Close(); err != nil && serr == nil {
			serr = err
		}
	}
	// Release segment mappings last: queries are done once the stores are
	// closed.
	if err := e.tables.Close(); err != nil && serr == nil {
		serr = err
	}
	if serr != nil {
		return serr
	}
	return perr
}
